package interp

import (
	"errors"
	"math"
	"testing"

	"acctee/internal/wasm"
)

// buildSumModule returns a module with sum(n) = 0+1+...+(n-1) via a loop.
func buildSumModule(t *testing.T) *wasm.Module {
	t.Helper()
	b := wasm.NewModule("sum")
	f := b.Func("sum", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
	})
	f.LocalGet(acc)
	b.ExportFunc("sum", f.End())
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestLoopSum(t *testing.T) {
	m := buildSumModule(t)
	vm, err := Instantiate(m, Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	for _, n := range []int32{0, 1, 2, 10, 100} {
		res, err := vm.InvokeExport("sum", uint64(uint32(n)))
		if err != nil {
			t.Fatalf("sum(%d): %v", n, err)
		}
		want := uint64(uint32(n * (n - 1) / 2))
		if res[0] != want {
			t.Errorf("sum(%d) = %d, want %d", n, res[0], want)
		}
	}
}

func TestRecursiveFib(t *testing.T) {
	b := wasm.NewModule("fib")
	f := b.Func("fib", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).I32Const(2).Op(wasm.OpI32LtS)
	f.If(wasm.BlockOf(wasm.I32), func() {
		f.LocalGet(0)
	}, func() {
		f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).Call(f.Index)
		f.LocalGet(0).I32Const(2).Op(wasm.OpI32Sub).Call(f.Index)
		f.Op(wasm.OpI32Add)
	})
	b.ExportFunc("fib", f.End())
	m := b.MustBuild()
	vm, err := Instantiate(m, Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		res, err := vm.InvokeExport("fib", uint64(n))
		if err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if res[0] != w {
			t.Errorf("fib(%d) = %d, want %d", n, res[0], w)
		}
	}
}

func TestMemoryLoadStore(t *testing.T) {
	b := wasm.NewModule("mem")
	b.Memory(1, 2)
	f := b.Func("roundtrip", []wasm.ValueType{wasm.I32, wasm.I64}, []wasm.ValueType{wasm.I64})
	f.LocalGet(0).LocalGet(1).Store(wasm.OpI64Store, 0)
	f.LocalGet(0).Load(wasm.OpI64Load, 0)
	b.ExportFunc("roundtrip", f.End())
	m := b.MustBuild()
	vm, err := Instantiate(m, Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := vm.InvokeExport("roundtrip", 1024, 0xDEADBEEFCAFE)
	if err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if res[0] != 0xDEADBEEFCAFE {
		t.Errorf("roundtrip = %x", res[0])
	}
	// out-of-bounds must trap
	if _, err := vm.InvokeExport("roundtrip", 65536-4, 1); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("oob store: got %v, want ErrOutOfBounds", err)
	}
}

func TestMemoryGrowAndSize(t *testing.T) {
	b := wasm.NewModule("grow")
	b.Memory(1, 4)
	f := b.Func("grow", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Op(wasm.OpMemoryGrow)
	b.ExportFunc("grow", f.End())
	g := b.Func("size", nil, []wasm.ValueType{wasm.I32})
	g.Op(wasm.OpMemorySize)
	b.ExportFunc("size", g.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, _ := vm.InvokeExport("grow", 2)
	if int32(uint32(res[0])) != 1 {
		t.Errorf("grow(2) returned %d, want old size 1", int32(uint32(res[0])))
	}
	res, _ = vm.InvokeExport("size")
	if res[0] != 3 {
		t.Errorf("size = %d, want 3", res[0])
	}
	// beyond max must fail with -1
	res, _ = vm.InvokeExport("grow", 100)
	if int32(uint32(res[0])) != -1 {
		t.Errorf("grow beyond max = %d, want -1", int32(uint32(res[0])))
	}
}

func TestBrTable(t *testing.T) {
	// classify(x): 0->10, 1->20, else->99
	b := wasm.NewModule("brtable")
	f := b.Func("classify", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	r := f.Local(wasm.I32)
	f.Block(wasm.BlockEmpty, func() {
		f.Block(wasm.BlockEmpty, func() {
			f.Block(wasm.BlockEmpty, func() {
				f.LocalGet(0)
				f.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 1, 2}})
			})
			f.I32Const(10).LocalSet(r).Br(1)
		})
		f.I32Const(20).LocalSet(r)
	})
	f.LocalGet(r)
	b.ExportFunc("classify", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	cases := map[uint64]uint64{0: 10, 1: 20, 2: 0, 7: 0}
	for in, want := range cases {
		res, err := vm.InvokeExport("classify", in)
		if err != nil {
			t.Fatalf("classify(%d): %v", in, err)
		}
		if res[0] != want {
			t.Errorf("classify(%d) = %d, want %d", in, res[0], want)
		}
	}
}

func TestCallIndirect(t *testing.T) {
	b := wasm.NewModule("indirect")
	add := b.Func("add", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	add.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
	addIdx := add.End()
	sub := b.Func("sub", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	sub.LocalGet(0).LocalGet(1).Op(wasm.OpI32Sub)
	subIdx := sub.End()
	b.Table(addIdx, subIdx)
	disp := b.Func("dispatch", []wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	disp.LocalGet(1).LocalGet(2).LocalGet(0)
	ti := b.TypeIndex([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	disp.Emit(wasm.Instr{Op: wasm.OpCallIndirect, Idx: ti})
	b.ExportFunc("dispatch", disp.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := vm.InvokeExport("dispatch", 0, 7, 5)
	if err != nil {
		t.Fatalf("dispatch add: %v", err)
	}
	if res[0] != 12 {
		t.Errorf("dispatch add = %d", res[0])
	}
	res, err = vm.InvokeExport("dispatch", 1, 7, 5)
	if err != nil {
		t.Fatalf("dispatch sub: %v", err)
	}
	if res[0] != 2 {
		t.Errorf("dispatch sub = %d", res[0])
	}
	if _, err := vm.InvokeExport("dispatch", 5, 1, 1); !errors.Is(err, ErrUndefinedElement) {
		t.Errorf("dispatch oob = %v, want ErrUndefinedElement", err)
	}
}

func TestHostImportAndIO(t *testing.T) {
	b := wasm.NewModule("host")
	logIdx := b.ImportFunc("env", "emit", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Call(logIdx)
	b.ExportFunc("run", f.End())
	var got []uint64
	vm, err := Instantiate(b.MustBuild(), Config{Imports: map[string]HostFunc{
		"env.emit": func(vm *VM, args []uint64) ([]uint64, error) {
			got = append(got, args[0])
			vm.AddIOBytes(4)
			return []uint64{args[0] * 2}, nil
		},
	}})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := vm.InvokeExport("run", 21)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res[0] != 42 || len(got) != 1 || got[0] != 21 {
		t.Errorf("host call mismatch: res=%v got=%v", res, got)
	}
	if vm.IOBytes() != 4 {
		t.Errorf("io bytes = %d, want 4", vm.IOBytes())
	}
}

func TestFuelExhaustion(t *testing.T) {
	m := buildSumModule(t)
	vm, err := Instantiate(m, Config{Fuel: 50})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := vm.InvokeExport("sum", 1_000_000); !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("got %v, want ErrFuelExhausted", err)
	}
}

func TestDivTraps(t *testing.T) {
	b := wasm.NewModule("div")
	f := b.Func("div", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivS)
	b.ExportFunc("div", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := vm.InvokeExport("div", 1, 0); !errors.Is(err, ErrDivByZero) {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := vm.InvokeExport("div", uint64(uint32(1)<<31), uint64(uint32(0xFFFFFFFF))); !errors.Is(err, ErrIntOverflow) {
		t.Errorf("overflow: %v", err)
	}
	res, err := vm.InvokeExport("div", uint64(uint32(0xFFFFFFF9)), 2) // -7/2 = -3
	if err != nil {
		t.Fatalf("div: %v", err)
	}
	if int32(uint32(res[0])) != -3 {
		t.Errorf("-7/2 = %d, want -3", int32(uint32(res[0])))
	}
}

func TestFloatOps(t *testing.T) {
	b := wasm.NewModule("float")
	f := b.Func("hyp", []wasm.ValueType{wasm.F64, wasm.F64}, []wasm.ValueType{wasm.F64})
	f.LocalGet(0).LocalGet(0).Op(wasm.OpF64Mul)
	f.LocalGet(1).LocalGet(1).Op(wasm.OpF64Mul)
	f.Op(wasm.OpF64Add).Op(wasm.OpF64Sqrt)
	b.ExportFunc("hyp", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := vm.InvokeExport("hyp", math.Float64bits(3), math.Float64bits(4))
	if err != nil {
		t.Fatalf("hyp: %v", err)
	}
	if got := math.Float64frombits(res[0]); got != 5 {
		t.Errorf("hyp(3,4) = %g, want 5", got)
	}
}

func TestTruncTraps(t *testing.T) {
	b := wasm.NewModule("trunc")
	f := b.Func("t", []wasm.ValueType{wasm.F64}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Op(wasm.OpI32TruncF64S)
	b.ExportFunc("t", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := vm.InvokeExport("t", math.Float64bits(math.NaN())); !errors.Is(err, ErrInvalidConversion) {
		t.Errorf("nan: %v", err)
	}
	if _, err := vm.InvokeExport("t", math.Float64bits(3e10)); !errors.Is(err, ErrIntOverflow) {
		t.Errorf("overflow: %v", err)
	}
	res, err := vm.InvokeExport("t", math.Float64bits(-3.9))
	if err != nil {
		t.Fatalf("t(-3.9): %v", err)
	}
	if int32(uint32(res[0])) != -3 {
		t.Errorf("trunc(-3.9) = %d, want -3", int32(uint32(res[0])))
	}
}

func TestGlobals(t *testing.T) {
	b := wasm.NewModule("globals")
	g := b.Global("counter", wasm.I64, true, wasm.ConstI64(5))
	f := b.Func("bump", nil, []wasm.ValueType{wasm.I64})
	f.GlobalGet(g).I64ConstV(1).Op(wasm.OpI64Add).GlobalSet(g)
	f.GlobalGet(g)
	b.ExportFunc("bump", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	for want := uint64(6); want <= 8; want++ {
		res, err := vm.InvokeExport("bump")
		if err != nil {
			t.Fatalf("bump: %v", err)
		}
		if res[0] != want {
			t.Errorf("bump = %d, want %d", res[0], want)
		}
	}
}

func TestInstrCountDeterminism(t *testing.T) {
	m := buildSumModule(t)
	counts := make([]uint64, 3)
	for i := range counts {
		vm, err := Instantiate(m, Config{})
		if err != nil {
			t.Fatalf("instantiate: %v", err)
		}
		if _, err := vm.InvokeExport("sum", 1000); err != nil {
			t.Fatalf("sum: %v", err)
		}
		counts[i] = vm.InstrCount()
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("instruction count not deterministic: %v", counts)
	}
	if counts[0] < 1000 {
		t.Errorf("suspiciously low count %d", counts[0])
	}
}

func TestCallStackExhaustion(t *testing.T) {
	b := wasm.NewModule("rec")
	f := b.Func("inf", nil, nil)
	f.Call(f.Index)
	b.ExportFunc("inf", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{MaxCallDepth: 100})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := vm.InvokeExport("inf"); !errors.Is(err, ErrCallStackExhausted) {
		t.Errorf("got %v, want ErrCallStackExhausted", err)
	}
}

func TestUnreachableTrap(t *testing.T) {
	b := wasm.NewModule("ur")
	f := b.Func("boom", nil, nil)
	f.Op(wasm.OpUnreachable)
	b.ExportFunc("boom", f.End())
	vm, err := Instantiate(b.MustBuild(), Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := vm.InvokeExport("boom"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("got %v, want ErrUnreachable", err)
	}
}
