package interp_test

import (
	"errors"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// This file pins the call-path optimization layer (inline.go and the
// residual-call fast paths) to the structured reference engine, which always
// executes real calls over the frozen pre-inline bodies: every observation —
// results, trap identity, InstrCount, weighted Cost, remaining fuel, memory,
// globals — must be bit-identical whether a callee was spliced into its
// caller or not, including traps raised *inside* inlined frames and fuel
// exhaustion mid-inlined-body. The call_indirect inline cache gets the same
// treatment over multi-call sequences (hit, miss, refill, type mismatch)
// plus its invalidation rules (SetTableEntry, Reset after mutation).

// buildLeafCalls builds a caller combining two inlinable straight-line
// leaves; double has a non-param local the marker must zero.
func buildLeafCalls() *wasm.Module {
	b := wasm.NewModule("leaf")
	dbl := b.Func("double", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	tmp := dbl.Local(wasm.I32)
	dbl.LocalGet(0).I32Const(2).Op(wasm.OpI32Mul).LocalSet(tmp)
	dbl.LocalGet(tmp)
	dblIdx := dbl.End()
	add := b.Func("add", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	add.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
	addIdx := add.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Call(dblIdx)
	f.LocalGet(1).Call(dblIdx)
	f.Call(addIdx)
	b.ExportFunc("f", f.End())
	return b.MustBuild()
}

// buildChainCalls builds a transitive chain f -> mid -> leaf of inlinable
// bodies, collapsed over multiple inlining rounds.
func buildChainCalls() *wasm.Module {
	b := wasm.NewModule("chain")
	leaf := b.Func("leaf", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	leaf.LocalGet(0).I32Const(3).Op(wasm.OpI32Add)
	leafIdx := leaf.End()
	mid := b.Func("mid", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	mid.LocalGet(0).Call(leafIdx).I32Const(10).Op(wasm.OpI32Mul)
	midIdx := mid.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Call(midIdx).Call(midIdx)
	b.ExportFunc("f", f.End())
	return b.MustBuild()
}

// buildLoopedCalls wraps an inlined leaf call and a residual (loop-bearing,
// hence ineligible) call in a counted loop, so segment charges, the marker
// and the residual fast path all run hot.
func buildLoopedCalls() *wasm.Module {
	b := wasm.NewModule("loopcall")
	leaf := b.Func("leaf", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	leaf.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
	leafIdx := leaf.End()
	work := b.Func("work", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := work.Local(wasm.I32)
	acc := work.Local(wasm.I32)
	work.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		work.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
	})
	work.LocalGet(acc)
	workIdx := work.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	j := f.Local(wasm.I32)
	sum := f.Local(wasm.I32)
	f.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(sum).Call(leafIdx).LocalSet(sum)
		f.LocalGet(j).I32Const(3).Op(wasm.OpI32And).Call(workIdx).LocalGet(sum).Op(wasm.OpI32Add).LocalSet(sum)
	})
	f.LocalGet(sum)
	b.ExportFunc("f", f.End())
	return b.MustBuild()
}

func TestInlineLeafValues(t *testing.T) {
	got := diffEngines(t, buildLeafCalls(), interp.Config{CostModel: weights.Calibrated()}, "f", 5, 7)
	if got.res[0] != 24 {
		t.Errorf("f(5,7) = %d, want 24", got.res[0])
	}
}

func TestInlineTransitiveChain(t *testing.T) {
	got := diffEngines(t, buildChainCalls(), interp.Config{CostModel: weights.Calibrated()}, "f", 4)
	// mid(4) = (4+3)*10 = 70; mid(70) = (70+3)*10 = 730
	if got.res[0] != 730 {
		t.Errorf("f(4) = %d, want 730", got.res[0])
	}
}

func TestInlineLoopedCalls(t *testing.T) {
	diffEngines(t, buildLoopedCalls(), interp.Config{CostModel: weights.Calibrated()}, "f", 17)
}

// TestInlineMatchesDisableInline pins the accounting-exactness claim from
// the other side: the same engine with and without the inlining pass must
// agree on every counter, not just with the structured oracle.
func TestInlineMatchesDisableInline(t *testing.T) {
	for _, m := range []*wasm.Module{buildLeafCalls(), buildChainCalls(), buildLoopedCalls()} {
		cmOn, err := interp.Compile(m, interp.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cmOff, err := interp.Compile(m, interp.CompileOptions{DisableInline: true})
		if err != nil {
			t.Fatal(err)
		}
		if cmOn.InlineStats.SitesInlined == 0 {
			t.Fatalf("module %s: inliner fired on no sites", m.Name)
		}
		for _, eng := range []interp.Engine{interp.EngineFlat, interp.EngineFused, interp.EngineReg} {
			cfg := interp.Config{Engine: eng, CostModel: weights.Calibrated(), Fuel: 1 << 20}
			vmOn, err := cmOn.Instantiate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			vmOff, err := cmOff.Instantiate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rOn, errOn := vmOn.InvokeExport("f", 9, 9)
			rOff, errOff := vmOff.InvokeExport("f", 9, 9)
			if (errOn == nil) != (errOff == nil) {
				t.Fatalf("%s %v: err %v vs %v", m.Name, eng, errOn, errOff)
			}
			if len(rOn) != len(rOff) || (len(rOn) > 0 && rOn[0] != rOff[0]) {
				t.Errorf("%s %v: result %v vs %v", m.Name, eng, rOn, rOff)
			}
			if vmOn.InstrCount() != vmOff.InstrCount() {
				t.Errorf("%s %v: InstrCount %d vs %d", m.Name, eng, vmOn.InstrCount(), vmOff.InstrCount())
			}
			if vmOn.Cost() != vmOff.Cost() {
				t.Errorf("%s %v: Cost %d vs %d", m.Name, eng, vmOn.Cost(), vmOff.Cost())
			}
			if vmOn.FuelRemaining() != vmOff.FuelRemaining() {
				t.Errorf("%s %v: fuel %d vs %d", m.Name, eng, vmOn.FuelRemaining(), vmOff.FuelRemaining())
			}
		}
	}
}

// TestInlineTrapsInInlinedFrames drives traps that fire *inside* a spliced
// callee body: the rollback must use the callee's own segment bounds within
// the caller's flat IR and every counter must match the structured engine,
// which executed a real call frame.
func TestInlineTrapsInInlinedFrames(t *testing.T) {
	t.Run("div_by_zero", func(t *testing.T) {
		b := wasm.NewModule("idiv")
		div := b.Func("div", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
		div.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivU).I32Const(1).Op(wasm.OpI32Add)
		divIdx := div.End()
		f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
		f.LocalGet(0).LocalGet(1).Call(divIdx)
		f.I32Const(100).Op(wasm.OpI32Add) // suffix the trap must roll back
		b.ExportFunc("f", f.End())
		got := diffEngines(t, b.MustBuild(), interp.Config{CostModel: weights.Calibrated()}, "f", 6, 0)
		if !errors.Is(got.err, interp.ErrDivByZero) {
			t.Errorf("err = %v, want ErrDivByZero", got.err)
		}
	})
	t.Run("oob_load", func(t *testing.T) {
		b := wasm.NewModule("ioob")
		b.Memory(1, 1)
		ld := b.Func("ld", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		ld.LocalGet(0).Load(wasm.OpI32Load, 0).I32Const(7).Op(wasm.OpI32Mul)
		ldIdx := ld.End()
		f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		f.LocalGet(0).Call(ldIdx).I32Const(1).Op(wasm.OpI32Add)
		b.ExportFunc("f", f.End())
		m := b.MustBuild()
		if got := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", 0); got.err != nil {
			t.Errorf("in-bounds err = %v", got.err)
		}
		got := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", 1<<20)
		if !errors.Is(got.err, interp.ErrOutOfBounds) {
			t.Errorf("err = %v, want ErrOutOfBounds", got.err)
		}
	})
	t.Run("nested_chain_trap", func(t *testing.T) {
		// The trap fires in a callee inlined through two rounds.
		b := wasm.NewModule("inest")
		leaf := b.Func("leaf", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		leaf.I32Const(100).LocalGet(0).Op(wasm.OpI32RemU)
		leafIdx := leaf.End()
		mid := b.Func("mid", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		mid.LocalGet(0).Call(leafIdx).I32Const(2).Op(wasm.OpI32Mul)
		midIdx := mid.End()
		f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		f.LocalGet(0).Call(midIdx)
		b.ExportFunc("f", f.End())
		m := b.MustBuild()
		if got := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", 7); got.err != nil || got.res[0] != 4 {
			t.Errorf("f(7) = %v, %v; want 4", got.res, got.err)
		}
		got := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", 0)
		if !errors.Is(got.err, interp.ErrDivByZero) {
			t.Errorf("err = %v, want ErrDivByZero", got.err)
		}
	})
	t.Run("call_stack_exhaustion_at_marker", func(t *testing.T) {
		// Recursion with an inlined leaf on every level: the exhaustion
		// trap fires at the inline marker's logical depth bump.
		b := wasm.NewModule("idepth")
		leaf := b.Func("leaf", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		leaf.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
		leafIdx := leaf.End()
		f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
		f.LocalGet(0)
		f.If(wasm.BlockOf(wasm.I32), func() {
			f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).Call(1).Call(leafIdx)
		}, func() {
			f.LocalGet(0).Call(leafIdx)
		})
		b.ExportFunc("f", f.End())
		m := b.MustBuild()
		got := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated(), MaxCallDepth: 8}, "f", 4)
		if got.err != nil {
			t.Errorf("within depth: %v", got.err)
		}
		got = diffEngines(t, m, interp.Config{CostModel: weights.Calibrated(), MaxCallDepth: 8}, "f", 64)
		if !errors.Is(got.err, interp.ErrCallStackExhausted) {
			t.Errorf("err = %v, want ErrCallStackExhausted", got.err)
		}
	})
}

// TestInlineFuelSweep exhausts fuel at every possible point of a run whose
// hot path crosses inline markers, inlined bodies and residual calls; the
// per-instruction deopt tail must interpret the spliced bodies (shifted
// local indices against the full frame) with exactly the reference totals.
func TestInlineFuelSweep(t *testing.T) {
	m := buildLoopedCalls()
	for fuel := uint64(1); fuel < 420; fuel++ {
		diffEngines(t, m, interp.Config{Fuel: fuel, CostModel: weights.Calibrated()}, "f", 6)
	}
}

// buildDispatch builds the inline-cache exercise module: table slots 0/1
// hold compatible functions, slot 2 a signature-incompatible one.
func buildDispatch() *wasm.Module {
	b := wasm.NewModule("disp")
	add := b.Func("add", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	add.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
	addIdx := add.End()
	sub := b.Func("sub", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	sub.LocalGet(0).LocalGet(1).Op(wasm.OpI32Sub)
	subIdx := sub.End()
	neg := b.Func("neg", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	neg.I32Const(0).LocalGet(0).Op(wasm.OpI32Sub)
	negIdx := neg.End()
	b.Table(addIdx, subIdx, negIdx)
	disp := b.Func("dispatch", []wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	disp.LocalGet(1).LocalGet(2).LocalGet(0)
	ti := b.TypeIndex([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	disp.Emit(wasm.Instr{Op: wasm.OpCallIndirect, Idx: ti})
	b.ExportFunc("dispatch", disp.End())
	return b.MustBuild()
}

// TestCallIndirectCacheDifferential runs a hit/miss/refill/trap sequence on
// ONE VM per engine, so cache state carries across calls, and requires the
// cached path to be observationally identical to the cacheless structured
// engine call by call.
func TestCallIndirectCacheDifferential(t *testing.T) {
	seq := []struct {
		elem uint32
		a, b uint64
		want uint64
		trap error
	}{
		{0, 7, 5, 12, nil}, // miss -> fill
		{0, 9, 4, 13, nil}, // hit
		{1, 9, 4, 5, nil},  // miss -> refill
		{0, 2, 2, 4, nil},  // miss again (monomorphic slot was retargeted)
		{5, 1, 1, 0, interp.ErrUndefinedElement},
		{2, 1, 1, 0, interp.ErrIndirectTypeBad}, // full path catches mismatch
		{0, 3, 4, 7, nil},                       // cache still sound after traps
	}
	m := buildDispatch()
	cfgBase := interp.Config{CostModel: weights.Calibrated()}

	type step struct {
		res   []uint64
		err   error
		count uint64
		cost  uint64
	}
	run := func(eng interp.Engine) []step {
		cfg := cfgBase
		cfg.Engine = eng
		vm, err := interp.Instantiate(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []step
		for _, c := range seq {
			res, err := vm.InvokeExport("dispatch", uint64(c.elem), c.a, c.b)
			out = append(out, step{res: res, err: err, count: vm.InstrCount(), cost: vm.Cost()})
		}
		return out
	}

	ref := run(interp.EngineStructured)
	for i, c := range seq {
		if c.trap == nil {
			if ref[i].err != nil || ref[i].res[0] != c.want {
				t.Fatalf("structured step %d: got %v, %v", i, ref[i].res, ref[i].err)
			}
		} else if !errors.Is(ref[i].err, c.trap) {
			t.Fatalf("structured step %d: err %v, want %v", i, ref[i].err, c.trap)
		}
	}
	for _, eng := range []interp.Engine{interp.EngineFlat, interp.EngineFused, interp.EngineReg} {
		got := run(eng)
		for i := range seq {
			if (got[i].err == nil) != (ref[i].err == nil) || (ref[i].err != nil && !errors.Is(got[i].err, ref[i].err)) {
				t.Errorf("%v step %d: err %v, structured %v", eng, i, got[i].err, ref[i].err)
			}
			if ref[i].err == nil && got[i].res[0] != ref[i].res[0] {
				t.Errorf("%v step %d: res %d, structured %d", eng, i, got[i].res[0], ref[i].res[0])
			}
			if got[i].count != ref[i].count || got[i].cost != ref[i].cost {
				t.Errorf("%v step %d: count/cost %d/%d, structured %d/%d",
					eng, i, got[i].count, got[i].cost, ref[i].count, ref[i].cost)
			}
		}
	}
}

// TestCallIndirectCacheInvalidation pins the two invalidation rules: a
// SetTableEntry mutation must flush the caches immediately, and a Reset
// after a mutated run must flush them again (the restored table image no
// longer matches what the cache vouched for).
func TestCallIndirectCacheInvalidation(t *testing.T) {
	m := buildDispatch()
	for _, eng := range []interp.Engine{interp.EngineStructured, interp.EngineFlat, interp.EngineFused, interp.EngineReg} {
		cfg := interp.Config{Engine: eng}
		vm, err := interp.Instantiate(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		call := func(elem uint32, a, b uint64) uint64 {
			res, err := vm.InvokeExport("dispatch", uint64(elem), a, b)
			if err != nil {
				t.Fatalf("%v dispatch(%d): %v", eng, elem, err)
			}
			return res[0]
		}
		if got := call(0, 7, 5); got != 12 {
			t.Fatalf("%v: add = %d", eng, got)
		}
		// Retarget slot 0 to sub; a stale cache would still answer 12.
		if err := vm.SetTableEntry(0, 1); err != nil {
			t.Fatal(err)
		}
		if got := call(0, 7, 5); got != 2 {
			t.Errorf("%v after SetTableEntry: = %d, want 2", eng, got)
		}
		// Reset restores the table image; a cache surviving the mutated
		// run would still answer 2.
		if err := vm.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if got := call(0, 7, 5); got != 12 {
			t.Errorf("%v after Reset: = %d, want 12", eng, got)
		}
		// Reset with NO preceding mutation keeps the (still valid) cache.
		if err := vm.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if got := call(0, 8, 5); got != 13 {
			t.Errorf("%v after clean Reset: = %d, want 13", eng, got)
		}
	}
}

// TestZeroAllocCallPaths pins the per-call allocation count of the hot
// paths at zero: a full invoke whose body crosses inline markers and
// residual defined calls (frame slab reuse), and the pooled Get/Invoke/Put
// cycle. Regression guard: future PRs must not add per-call allocations.
func TestZeroAllocCallPaths(t *testing.T) {
	b := wasm.NewModule("zalloc")
	leaf := b.Func("leaf", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	leaf.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
	leafIdx := leaf.End()
	work := b.Func("work", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := work.Local(wasm.I32)
	acc := work.Local(wasm.I32)
	work.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		work.LocalGet(acc).I32Const(3).Op(wasm.OpI32Add).LocalSet(acc)
	})
	work.LocalGet(acc)
	workIdx := work.End()
	f := b.Func("spin", []wasm.ValueType{wasm.I32}, nil)
	j := f.Local(wasm.I32)
	s := f.Local(wasm.I32)
	f.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(s).I32Const(7).Op(wasm.OpI32And).Call(leafIdx).Call(workIdx).LocalSet(s)
	})
	b.ExportFunc("spin", f.End())
	m := b.MustBuild()

	args := []uint64{64}
	for _, eng := range []interp.Engine{interp.EngineFlat, interp.EngineFused, interp.EngineReg} {
		vm, err := interp.Instantiate(m, interp.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.InvokeExport("spin", args...); err != nil { // warm the frame slabs
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if _, err := vm.InvokeExport("spin", args...); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%v: %v allocs per invoke, want 0", eng, n)
		}
	}

	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := interp.Config{Engine: interp.EngineFused}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ { // warm the pool cycle
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.InvokeExport("spin", args...); err != nil {
			t.Fatal(err)
		}
		pool.Put(vm)
	}
	if n := testing.AllocsPerRun(100, func() {
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.InvokeExport("spin", args...); err != nil {
			t.Fatal(err)
		}
		pool.Put(vm)
	}); n != 0 {
		t.Errorf("pooled reset+invoke: %v allocs per cycle, want 0", n)
	}
}
