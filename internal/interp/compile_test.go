package interp

import (
	"testing"

	"acctee/internal/wasm"
)

// TestLoweredSidetable pins the lowering pass output on a hand-checked
// body: branch targets, truncation heights, copy arities, segment leaders
// and the stack high-water mark.
func TestLoweredSidetable(t *testing.T) {
	b := wasm.NewModule("st")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.Block(wasm.BlockOf(wasm.I32), func() {
		f.I32Const(1000)
		f.Block(wasm.BlockEmpty, func() {
			f.LocalGet(0)
			f.BrIf(0)
			f.I32Const(7)
			f.Br(1)
		})
		f.Op(wasm.OpDrop)
		f.I32Const(3)
	})
	b.ExportFunc("f", f.End())
	m := b.MustBuild()

	// Expected body layout (pc: instruction):
	//  0: block (result i32)   1: i32.const 1000   2: block
	//  3: local.get 0          4: br_if 0          5: i32.const 7
	//  6: br 1                 7: end              8: drop
	//  9: i32.const 3         10: end             11: end (function)
	wantOps := []wasm.Opcode{
		wasm.OpBlock, wasm.OpI32Const, wasm.OpBlock, wasm.OpLocalGet,
		wasm.OpBrIf, wasm.OpI32Const, wasm.OpBr, wasm.OpEnd,
		wasm.OpDrop, wasm.OpI32Const, wasm.OpEnd, wasm.OpEnd,
	}
	body := m.Funcs[0].Body
	if len(body) != len(wantOps) {
		t.Fatalf("body length %d, want %d", len(body), len(wantOps))
	}
	for pc, op := range wantOps {
		if body[pc].Op != op {
			t.Fatalf("pc %d: opcode %s, want %s", pc, body[pc].Op, op)
		}
	}

	vm, err := Instantiate(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cf := &vm.funcs[0]

	// br_if 0 (pc 4) targets past the inner block's end, truncating to the
	// operand height at inner-block entry (1: the const 1000), copying
	// nothing.
	if fl := cf.flat[4]; fl.target != 8 || fl.height != 1 || fl.arity != 0 {
		t.Errorf("br_if sidetable = {target %d, height %d, arity %d}, want {8, 1, 0}", fl.target, fl.height, fl.arity)
	}
	// br 1 (pc 6) targets past the outer block's end, truncating to the
	// function-entry height and carrying the block's single result.
	if fl := cf.flat[6]; fl.target != 11 || fl.height != 0 || fl.arity != 1 {
		t.Errorf("br sidetable = {target %d, height %d, arity %d}, want {11, 0, 1}", fl.target, fl.height, fl.arity)
	}

	// Segment leaders partition the body at control boundaries.
	wantSeg := map[int]int32{0: 1, 1: 2, 3: 2, 5: 2, 7: 1, 8: 3, 11: 1}
	for pc := range body {
		want := wantSeg[pc] // zero for non-leaders
		if got := cf.flat[pc].segCnt; got != want {
			t.Errorf("pc %d: segCnt = %d, want %d", pc, got, want)
		}
	}
	// Peak operand height is 2 (const 1000 + local.get / const 7), plus one
	// slot of host-result headroom.
	if cf.maxStack != 3 {
		t.Errorf("maxStack = %d, want 3", cf.maxStack)
	}
}

// TestLoweredIfElseTargets pins the if false-edge and else continuation.
func TestLoweredIfElseTargets(t *testing.T) {
	b := wasm.NewModule("ie")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0)
	f.If(wasm.BlockOf(wasm.I32), func() {
		f.I32Const(1)
	}, func() {
		f.I32Const(2)
	})
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	// 0: local.get  1: if  2: i32.const 1  3: else  4: i32.const 2
	// 5: end  6: end(function)
	vm, err := Instantiate(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cf := &vm.funcs[0]
	if got := cf.flat[1].target; got != 4 {
		t.Errorf("if false-edge target = %d, want 4 (after else)", got)
	}
	if got := cf.flat[3].target; got != 6 {
		t.Errorf("else continuation target = %d, want 6 (after end)", got)
	}

	// Without an else the false edge jumps past the end.
	b2 := wasm.NewModule("ie2")
	g := b2.Func("f", []wasm.ValueType{wasm.I32}, nil)
	g.LocalGet(0)
	g.If(wasm.BlockEmpty, func() {
		g.Op(wasm.OpNop)
	}, nil)
	b2.ExportFunc("f", g.End())
	// 0: local.get  1: if  2: nop  3: end  4: end(function)
	vm2, err := Instantiate(b2.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := vm2.funcs[0].flat[1].target; got != 4 {
		t.Errorf("if-without-else false-edge target = %d, want 4", got)
	}
}
