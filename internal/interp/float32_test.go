package interp_test

import (
	"math"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/wasm"
)

func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }

func f32from(v uint64) float32 { return math.Float32frombits(uint32(v)) }

func TestF32Arithmetic(t *testing.T) {
	add := binop(t, wasm.OpF32Add, wasm.F32, wasm.F32)
	mul := binop(t, wasm.OpF32Mul, wasm.F32, wasm.F32)
	div := binop(t, wasm.OpF32Div, wasm.F32, wasm.F32)
	if got := f32from(call1(t, add, f32bits(1.5), f32bits(2.25))); got != 3.75 {
		t.Errorf("f32.add = %v", got)
	}
	if got := f32from(call1(t, mul, f32bits(3), f32bits(-0.5))); got != -1.5 {
		t.Errorf("f32.mul = %v", got)
	}
	if got := f32from(call1(t, div, f32bits(1), f32bits(0))); !math.IsInf(float64(got), 1) {
		t.Errorf("f32 1/0 = %v, want +inf", got)
	}
	// f32 rounding: results are rounded to single precision, not kept double
	if got := f32from(call1(t, add, f32bits(1), f32bits(1e-10))); got != 1 {
		t.Errorf("f32 precision: 1 + 1e-10 = %v, want exactly 1", got)
	}
}

func TestF32UnaryOps(t *testing.T) {
	cases := []struct {
		op   wasm.Opcode
		in   float32
		want float32
	}{
		{wasm.OpF32Abs, -2.5, 2.5},
		{wasm.OpF32Neg, 1.25, -1.25},
		{wasm.OpF32Ceil, 1.1, 2},
		{wasm.OpF32Floor, -1.1, -2},
		{wasm.OpF32Trunc, -1.9, -1},
		{wasm.OpF32Nearest, 2.5, 2}, // round-to-even
		{wasm.OpF32Nearest, 3.5, 4},
		{wasm.OpF32Sqrt, 9, 3},
	}
	for _, c := range cases {
		vm := unop(t, c.op, wasm.F32, wasm.F32)
		if got := f32from(call1(t, vm, f32bits(c.in))); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.op, c.in, got, c.want)
		}
	}
}

func TestDemotePromote(t *testing.T) {
	dem := unop(t, wasm.OpF32DemoteF64, wasm.F64, wasm.F32)
	pro := unop(t, wasm.OpF64PromoteF32, wasm.F32, wasm.F64)
	// demote loses precision
	got := f32from(call1(t, dem, math.Float64bits(1.0000000001)))
	if got != 1 {
		t.Errorf("demote(1.0000000001) = %v", got)
	}
	// promote is exact
	back := math.Float64frombits(call1(t, pro, f32bits(1.5)))
	if back != 1.5 {
		t.Errorf("promote(1.5) = %v", back)
	}
}

func TestReinterpret(t *testing.T) {
	i2f := unop(t, wasm.OpF64ReinterpretI, wasm.I64, wasm.F64)
	f2i := unop(t, wasm.OpI64ReinterpretF, wasm.F64, wasm.I64)
	bits := math.Float64bits(3.14159)
	if got := call1(t, i2f, bits); got != bits {
		t.Errorf("reinterpret changed bits: %#x vs %#x", got, bits)
	}
	if got := call1(t, f2i, bits); got != bits {
		t.Errorf("reinterpret back changed bits")
	}
}

func TestConvertUnsigned(t *testing.T) {
	// u32 max converts to ~4.29e9, not -1
	c := unop(t, wasm.OpF64ConvertI32U, wasm.I32, wasm.F64)
	got := math.Float64frombits(call1(t, c, uint64(uint32(0xFFFFFFFF))))
	if got != 4294967295 {
		t.Errorf("convert_i32_u(max) = %v", got)
	}
	// u64 high-bit value converts positive
	c64 := unop(t, wasm.OpF64ConvertI64U, wasm.I64, wasm.F64)
	got64 := math.Float64frombits(call1(t, c64, 1<<63))
	if got64 != 9.223372036854776e18 {
		t.Errorf("convert_i64_u(2^63) = %v", got64)
	}
}

func TestTruncUnsignedBoundaries(t *testing.T) {
	tr := unop(t, wasm.OpI32TruncF64U, wasm.F64, wasm.I32)
	// -0.5 truncates toward zero to 0 — legal for unsigned
	if got := call1(t, tr, math.Float64bits(-0.5)); got != 0 {
		t.Errorf("trunc_u(-0.5) = %d, want 0", got)
	}
	if got := call1(t, tr, math.Float64bits(4294967295)); got != 0xFFFFFFFF {
		t.Errorf("trunc_u(u32max) = %#x", got)
	}
	// 2^32 exactly must trap
	if _, err := tr.InvokeExport("f", math.Float64bits(4294967296)); err == nil {
		t.Error("trunc_u(2^32) did not trap")
	}
}

func TestSelectKeepsTypes(t *testing.T) {
	b := wasm.NewModule("sel")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.F64})
	f.F64ConstV(1.5).F64ConstV(2.5).LocalGet(0).Op(wasm.OpSelect)
	b.ExportFunc("f", f.End())
	vm, err := interp.Instantiate(b.MustBuild(), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.InvokeExport("f", 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64frombits(res[0]) != 1.5 {
		t.Errorf("select(1) = %v, want first operand", math.Float64frombits(res[0]))
	}
	res, _ = vm.InvokeExport("f", 0)
	if math.Float64frombits(res[0]) != 2.5 {
		t.Errorf("select(0) = %v, want second operand", math.Float64frombits(res[0]))
	}
}

func TestCopysign(t *testing.T) {
	cs := binop(t, wasm.OpF64Copysign, wasm.F64, wasm.F64)
	got := math.Float64frombits(call1(t, cs, math.Float64bits(3), math.Float64bits(-1)))
	if got != -3 {
		t.Errorf("copysign(3,-1) = %v", got)
	}
}

// TestF32DifferentialAllEngines drives the f32 instruction family through
// all four engines (structured oracle, flat, fused, register) and requires
// bit-identical results and accounting. The register lowering specialises
// f32.add/mul and routes the rest through its generic applyBin/applyUn
// arms, so this exercises both paths.
func TestF32DifferentialAllEngines(t *testing.T) {
	binops := []wasm.Opcode{
		wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul, wasm.OpF32Div,
		wasm.OpF32Min, wasm.OpF32Max, wasm.OpF32Copysign,
		wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt,
		wasm.OpF32Le, wasm.OpF32Ge,
	}
	unops := []wasm.Opcode{
		wasm.OpF32Abs, wasm.OpF32Neg, wasm.OpF32Ceil, wasm.OpF32Floor,
		wasm.OpF32Trunc, wasm.OpF32Nearest, wasm.OpF32Sqrt,
	}
	inputs := []float32{0, 1.5, -2.25, 0.1, float32(math.Inf(1)), float32(math.NaN()), 9, -0.5}
	for _, op := range binops {
		out := wasm.F32
		switch op {
		case wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt,
			wasm.OpF32Le, wasm.OpF32Ge:
			out = wasm.I32
		}
		b := wasm.NewModule("f32bin")
		f := b.Func("f", []wasm.ValueType{wasm.F32, wasm.F32}, []wasm.ValueType{out})
		f.LocalGet(0).LocalGet(1).Op(op)
		b.ExportFunc("f", f.End())
		m := b.MustBuild()
		for _, x := range inputs {
			for _, y := range inputs {
				diffEngines(t, m, interp.Config{}, "f", f32bits(x), f32bits(y))
			}
		}
	}
	for _, op := range unops {
		b := wasm.NewModule("f32un")
		f := b.Func("f", []wasm.ValueType{wasm.F32}, []wasm.ValueType{wasm.F32})
		f.LocalGet(0).Op(op)
		b.ExportFunc("f", f.End())
		m := b.MustBuild()
		for _, x := range inputs {
			diffEngines(t, m, interp.Config{}, "f", f32bits(x))
		}
	}
	// Constant operands exercise the register lowering's compile-time
	// folding and const-normalisation paths.
	b := wasm.NewModule("f32c")
	f := b.Func("f", []wasm.ValueType{wasm.F32}, []wasm.ValueType{wasm.F32})
	f.F32ConstV(2.5).LocalGet(0).Op(wasm.OpF32Mul).F32ConstV(1.25).Op(wasm.OpF32Add)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	for _, x := range inputs {
		diffEngines(t, m, interp.Config{}, "f", f32bits(x))
	}
}
