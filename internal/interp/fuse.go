package interp

import (
	"encoding/binary"
	"math"
	"math/bits"

	"acctee/internal/wasm"
)

// This file is the superinstruction fusion pass and its runtime helpers.
//
// fuse rewrites a lowered function body into the fused stream the default
// engine (EngineFused) dispatches: a copy of the body, indexed by the same
// pc space, where each fusible idiom is collapsed into one superinstruction
// at its first pc. Execution of a fused op jumps straight past its
// constituents, so the interior pcs are never dispatched (they keep their
// original instructions for debugging and for the per-instruction deopt
// paths, which always run over the original body).
//
// Keeping the original pc space is what makes accounting exact for free:
//
//   - a span never crosses an accounting-segment boundary (no interior pc is
//     a segment leader), so the block-batched fuel/cost/InstrCount charge at
//     the leader covers every constituent exactly once — the fused branch and
//     entry ops absorb the accrual without any extra dispatch;
//   - a trap inside a superinstruction rolls back at the trapping
//     constituent's original pc (each fused shape has at most one trapping
//     constituent, at a fixed offset), reproducing the reference engine's
//     per-instruction totals bit-for-bit;
//   - a fuel shortfall deoptimizes before the segment executes: the
//     per-instruction fuel tail walks the original body, never the fused
//     stream.
//
// Superinstruction operands are packed into the unused immediate fields of
// wasm.Instr (the fused stream is internal to this package and is never
// decoded, printed, validated or costed):
//
//	Idx   — first local (a), or the destination/value local where noted
//	Off   — second local (b), destination local for opFGetConstBinSet,
//	        or the original memarg offset for memory fusions
//	U64   — constant bits (c), destination local for opFGetGetBinSet,
//	        or the folded effective address for opFConstLoad
//	Align — packed: bits 0-7 the inner opcode (binop/compare/load/store),
//	        bit 8 the tee flag, bits 16-23 the access width,
//	        bits 24-26 the load extension code
//
// Fused opcodes live in the 0xC0+ range the MVP encoding leaves unused.
const (
	opFGetGetBin      wasm.Opcode = 0xC0 // local.get a; local.get b; binop
	opFGetConstBin    wasm.Opcode = 0xC1 // local.get a; const c; binop
	opFGetBin         wasm.Opcode = 0xC2 // local.get a; binop (stack operand first)
	opFConstBin       wasm.Opcode = 0xC3 // const c; binop (stack operand first)
	opFBinSet         wasm.Opcode = 0xC4 // binop; local.set/tee x
	opFGetGetBinSet   wasm.Opcode = 0xC5 // local.get a; local.get b; binop; local.set/tee x
	opFGetConstBinSet wasm.Opcode = 0xC6 // local.get a; const c; binop; local.set/tee x
	opFConstSet       wasm.Opcode = 0xC7 // const c; local.set/tee x
	opFCmpBr          wasm.Opcode = 0xC8 // compare; br_if
	opFGetGetCmpBr    wasm.Opcode = 0xC9 // local.get a; local.get b; compare; br_if
	opFGetConstCmpBr  wasm.Opcode = 0xCA // local.get a; const c; compare; br_if
	opFEqzBr          wasm.Opcode = 0xCB // i32.eqz/i64.eqz; br_if (inverted branch)
	opFConstLoad      wasm.Opcode = 0xCC // i32.const c; load (folded effective address)
	opFGetLoad        wasm.Opcode = 0xCD // local.get a; load
	opFScaleLoad      wasm.Opcode = 0xCE // i32.const c; i32.mul; load (scaled index)
	opFBinStore       wasm.Opcode = 0xCF // binop; store
	opFGetStore       wasm.Opcode = 0xD0 // local.get a; store (a is the value)
	opFConstStore     wasm.Opcode = 0xD1 // const c; store (c is the value)
	opFBinBr          wasm.Opcode = 0xD2 // binop; br_if (arith result drives the branch)
)

// fTee marks the set-flavoured fused ops as local.tee (result stays on the
// operand stack).
const fTee = 1 << 8

// Load extension codes (Align bits 24-26), matching the flat engine's
// per-opcode sign/zero extension of the raw little-endian bits.
const (
	extNone = iota
	extI32S8
	extI64S8
	extI32S16
	extI64S16
	extI64S32
)

// fusedWidth returns the number of constituent instructions a fused opcode
// covers (0 for non-fused opcodes).
func fusedWidth(op wasm.Opcode) int {
	switch op {
	case opFGetBin, opFConstBin, opFBinSet, opFConstSet, opFCmpBr, opFEqzBr,
		opFConstLoad, opFGetLoad, opFBinStore, opFGetStore, opFConstStore,
		opFBinBr:
		return 2
	case opFGetGetBin, opFGetConstBin, opFScaleLoad:
		return 3
	case opFGetGetBinSet, opFGetConstBinSet, opFGetGetCmpBr, opFGetConstCmpBr:
		return 4
	}
	return 0
}

// fusedTrapPC returns the offset (within the span) of the only constituent
// that can trap, or -1 if the shape is trap-free. The fused engine rolls a
// trap back at pc+offset, exactly where the reference engine would stop.
func fusedTrapPC(op wasm.Opcode) int {
	switch op {
	case opFGetGetBin, opFGetConstBin, opFGetGetBinSet, opFGetConstBinSet:
		return 2 // the binop
	case opFGetBin, opFConstBin, opFConstLoad, opFGetLoad, opFGetStore, opFConstStore:
		return 1 // the binop / memory access
	case opFScaleLoad:
		return 2 // the load
	case opFBinSet, opFBinStore, opFBinBr:
		return 0 // the binop (the store at +1 reports its own offset inline)
	}
	return -1
}

// fusableBin reports whether op is a two-operand numeric or comparison
// instruction applyBin implements. i64.eqz sits inside the comparison range
// but is unary, so it is excluded.
func fusableBin(op wasm.Opcode) bool {
	if op == wasm.OpI64Eqz {
		return false
	}
	switch {
	case op >= wasm.OpI32Eq && op <= wasm.OpF64Ge,
		op >= wasm.OpI32Add && op <= wasm.OpI32Rotr,
		op >= wasm.OpI64Add && op <= wasm.OpI64Rotr,
		op >= wasm.OpF32Add && op <= wasm.OpF32Copysign,
		op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		return true
	}
	return false
}

// fusableCmp reports whether op is a binary comparison (always trap-free),
// eligible for the fused conditional-branch shapes.
func fusableCmp(op wasm.Opcode) bool {
	return op != wasm.OpI64Eqz && op >= wasm.OpI32Eq && op <= wasm.OpF64Ge
}

// loadSpec returns the access width and extension code of a load opcode.
func loadSpec(op wasm.Opcode) (width, ext uint32, ok bool) {
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		return 4, extNone, true
	case wasm.OpI64Load, wasm.OpF64Load:
		return 8, extNone, true
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return 1, extNone, true
	case wasm.OpI32Load8S:
		return 1, extI32S8, true
	case wasm.OpI64Load8S:
		return 1, extI64S8, true
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return 2, extNone, true
	case wasm.OpI32Load16S:
		return 2, extI32S16, true
	case wasm.OpI64Load16S:
		return 2, extI64S16, true
	case wasm.OpI64Load32U:
		return 4, extNone, true
	case wasm.OpI64Load32S:
		return 4, extI64S32, true
	}
	return 0, 0, false
}

// storeSpec returns the access width of a store opcode.
func storeSpec(op wasm.Opcode) (width uint32, ok bool) {
	switch op {
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return 1, true
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return 2, true
	case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
		return 4, true
	case wasm.OpI64Store, wasm.OpF64Store:
		return 8, true
	}
	return 0, false
}

// packMemAlign packs an inner memory opcode with its width/extension into
// the Align payload field.
func packMemAlign(inner wasm.Opcode, width, ext uint32) uint32 {
	return uint32(inner) | width<<16 | ext<<24
}

// setAlign packs an inner opcode with the tee flag of the trailing
// local.set/local.tee.
func setAlign(inner, setOp wasm.Opcode) uint32 {
	al := uint32(inner)
	if setOp == wasm.OpLocalTee {
		al |= fTee
	}
	return al
}

// fuse builds the fused stream for one lowered function. Spans are matched
// greedily left to right, longest shape first, and are only placed when no
// interior pc is a segment leader — branch targets and post-call/grow split
// points are always leaders, so no control transfer can land inside a span
// and every span is covered by exactly one segment charge.
func fuse(cf *compiledFunc) {
	body := cf.body
	fused := make([]wasm.Instr, len(body))
	copy(fused, body)
	cf.fused = fused

	// fits reports whether the span [pc, pc+w) stays inside one segment.
	fits := func(pc, w int) bool {
		if pc+w > len(body) {
			return false
		}
		for q := pc + 1; q < pc+w; q++ {
			if cf.flat[q].segCnt != 0 {
				return false
			}
		}
		return true
	}
	isConst := func(op wasm.Opcode) bool {
		return op == wasm.OpI32Const || op == wasm.OpI64Const ||
			op == wasm.OpF32Const || op == wasm.OpF64Const
	}
	isSet := func(op wasm.Opcode) bool {
		return op == wasm.OpLocalSet || op == wasm.OpLocalTee
	}

	for pc := 0; pc < len(body); {
		w := 0
		in := &body[pc]
		switch {
		case in.Op == wasm.OpLocalGet:
			w = fuseAtGet(cf, fused, pc, fits, isConst, isSet)
		case isConst(in.Op):
			w = fuseAtConst(cf, fused, pc, fits, isSet)
		case fusableBin(in.Op):
			w = fuseAtBin(cf, fused, pc, fits, isSet)
		case in.Op == wasm.OpI32Eqz || in.Op == wasm.OpI64Eqz:
			if fits(pc, 2) && body[pc+1].Op == wasm.OpBrIf {
				fused[pc] = wasm.Instr{Op: opFEqzBr, Align: uint32(in.Op)}
				w = 2
			}
		}
		if w == 0 {
			w = 1
		}
		pc += w
	}
}

// fuseAtGet matches the shapes led by local.get.
func fuseAtGet(cf *compiledFunc, fused []wasm.Instr, pc int,
	fits func(int, int) bool, isConst, isSet func(wasm.Opcode) bool) int {
	body := cf.body
	a := body[pc].Idx

	// Four-wide: get get bin set/tee | get const bin set/tee |
	// get get cmp br_if | get const cmp br_if.
	if fits(pc, 4) {
		n1, n2, n3 := &body[pc+1], &body[pc+2], &body[pc+3]
		switch {
		case n1.Op == wasm.OpLocalGet && fusableBin(n2.Op) && isSet(n3.Op):
			fused[pc] = wasm.Instr{Op: opFGetGetBinSet, Idx: a, Off: n1.Idx,
				U64: uint64(n3.Idx), Align: setAlign(n2.Op, n3.Op)}
			return 4
		case isConst(n1.Op) && fusableBin(n2.Op) && isSet(n3.Op):
			fused[pc] = wasm.Instr{Op: opFGetConstBinSet, Idx: a, Off: n3.Idx,
				U64: n1.U64, Align: setAlign(n2.Op, n3.Op)}
			return 4
		case n1.Op == wasm.OpLocalGet && fusableCmp(n2.Op) && n3.Op == wasm.OpBrIf:
			fused[pc] = wasm.Instr{Op: opFGetGetCmpBr, Idx: a, Off: n1.Idx,
				Align: uint32(n2.Op)}
			return 4
		case isConst(n1.Op) && fusableCmp(n2.Op) && n3.Op == wasm.OpBrIf:
			fused[pc] = wasm.Instr{Op: opFGetConstCmpBr, Idx: a, U64: n1.U64,
				Align: uint32(n2.Op)}
			return 4
		}
	}
	// Three-wide: get get bin | get const bin.
	if fits(pc, 3) {
		n1, n2 := &body[pc+1], &body[pc+2]
		switch {
		case n1.Op == wasm.OpLocalGet && fusableBin(n2.Op):
			fused[pc] = wasm.Instr{Op: opFGetGetBin, Idx: a, Off: n1.Idx,
				Align: uint32(n2.Op)}
			return 3
		case isConst(n1.Op) && fusableBin(n2.Op):
			fused[pc] = wasm.Instr{Op: opFGetConstBin, Idx: a, U64: n1.U64,
				Align: uint32(n2.Op)}
			return 3
		}
	}
	// Two-wide: get load | get store | get bin.
	if fits(pc, 2) {
		n1 := &body[pc+1]
		if width, ext, ok := loadSpec(n1.Op); ok {
			fused[pc] = wasm.Instr{Op: opFGetLoad, Idx: a, Off: n1.Off,
				Align: packMemAlign(n1.Op, width, ext)}
			return 2
		}
		if width, ok := storeSpec(n1.Op); ok {
			fused[pc] = wasm.Instr{Op: opFGetStore, Idx: a, Off: n1.Off,
				Align: packMemAlign(n1.Op, width, 0)}
			return 2
		}
		if fusableBin(n1.Op) {
			fused[pc] = wasm.Instr{Op: opFGetBin, Idx: a, Align: uint32(n1.Op)}
			return 2
		}
	}
	return 0
}

// fuseAtConst matches the shapes led by a constant.
func fuseAtConst(cf *compiledFunc, fused []wasm.Instr, pc int,
	fits func(int, int) bool, isSet func(wasm.Opcode) bool) int {
	body := cf.body
	in := &body[pc]

	// Three-wide scaled-index addressing: i32.const c; i32.mul; load.
	if in.Op == wasm.OpI32Const && fits(pc, 3) && body[pc+1].Op == wasm.OpI32Mul {
		if width, ext, ok := loadSpec(body[pc+2].Op); ok {
			fused[pc] = wasm.Instr{Op: opFScaleLoad, U64: in.U64, Off: body[pc+2].Off,
				Align: packMemAlign(body[pc+2].Op, width, ext)}
			return 3
		}
	}
	if !fits(pc, 2) {
		return 0
	}
	n1 := &body[pc+1]
	// Folded effective address: the compile-time sum c+offset replaces the
	// runtime add, leaving a single bounds check.
	if in.Op == wasm.OpI32Const {
		if width, ext, ok := loadSpec(n1.Op); ok {
			ea := uint64(uint32(in.U64)) + uint64(n1.Off)
			fused[pc] = wasm.Instr{Op: opFConstLoad, U64: ea, Off: n1.Off,
				Align: packMemAlign(n1.Op, width, ext)}
			return 2
		}
	}
	if width, ok := storeSpec(n1.Op); ok {
		fused[pc] = wasm.Instr{Op: opFConstStore, U64: in.U64, Off: n1.Off,
			Align: packMemAlign(n1.Op, width, 0)}
		return 2
	}
	if fusableBin(n1.Op) {
		fused[pc] = wasm.Instr{Op: opFConstBin, U64: in.U64, Align: uint32(n1.Op)}
		return 2
	}
	if isSet(n1.Op) {
		fused[pc] = wasm.Instr{Op: opFConstSet, Idx: n1.Idx, U64: in.U64,
			Align: setAlign(0, n1.Op)}
		return 2
	}
	return 0
}

// fuseAtBin matches the shapes led by a binary op whose producers were not
// themselves fusable.
func fuseAtBin(cf *compiledFunc, fused []wasm.Instr, pc int,
	fits func(int, int) bool, isSet func(wasm.Opcode) bool) int {
	body := cf.body
	in := &body[pc]
	if !fits(pc, 2) {
		return 0
	}
	n1 := &body[pc+1]
	switch {
	case fusableCmp(in.Op) && n1.Op == wasm.OpBrIf:
		fused[pc] = wasm.Instr{Op: opFCmpBr, Align: uint32(in.Op)}
		return 2
	case fusableBin(in.Op) && n1.Op == wasm.OpBrIf:
		// Arith result consumed directly by a conditional branch (e.g. the
		// `x & mask` or `a - b` loop conditions): unlike the comparison
		// shapes the binop can trap (div/rem), so the trap pc is offset 0.
		fused[pc] = wasm.Instr{Op: opFBinBr, Align: uint32(in.Op)}
		return 2
	case isSet(n1.Op):
		fused[pc] = wasm.Instr{Op: opFBinSet, Idx: n1.Idx, Align: setAlign(in.Op, n1.Op)}
		return 2
	default:
		if width, ok := storeSpec(n1.Op); ok {
			fused[pc] = wasm.Instr{Op: opFBinStore, Off: n1.Off,
				Align: packMemAlign(in.Op, width, 0)}
			return 2
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// runtime helpers

// applyBin executes one two-operand numeric or comparison instruction on raw
// 64-bit operands (a is the lower stack slot). Semantics replicate the flat
// engine's switch cases exactly — wrap-around integer arithmetic, masked
// shift counts, IEEE-754 single/double arithmetic on the boxed bit patterns
// — so a fused execution is bit-identical to the unfused one. The two
// trapping families (integer division and remainder) return the engine trap
// errors; everything else returns a nil error.
func applyBin(op wasm.Opcode, a, b uint64) (uint64, error) {
	switch op {
	// --- i32 numeric
	case wasm.OpI32Add:
		return uint64(uint32(a) + uint32(b)), nil
	case wasm.OpI32Sub:
		return uint64(uint32(a) - uint32(b)), nil
	case wasm.OpI32Mul:
		return uint64(uint32(a) * uint32(b)), nil
	case wasm.OpI32DivS:
		x, y := int32(uint32(a)), int32(uint32(b))
		if y == 0 {
			return 0, ErrDivByZero
		}
		if x == math.MinInt32 && y == -1 {
			return 0, ErrIntOverflow
		}
		return i32u(x / y), nil
	case wasm.OpI32DivU:
		if uint32(b) == 0 {
			return 0, ErrDivByZero
		}
		return uint64(uint32(a) / uint32(b)), nil
	case wasm.OpI32RemS:
		x, y := int32(uint32(a)), int32(uint32(b))
		if y == 0 {
			return 0, ErrDivByZero
		}
		if x == math.MinInt32 && y == -1 {
			return 0, nil
		}
		return i32u(x % y), nil
	case wasm.OpI32RemU:
		if uint32(b) == 0 {
			return 0, ErrDivByZero
		}
		return uint64(uint32(a) % uint32(b)), nil
	case wasm.OpI32And:
		return uint64(uint32(a) & uint32(b)), nil
	case wasm.OpI32Or:
		return uint64(uint32(a) | uint32(b)), nil
	case wasm.OpI32Xor:
		return uint64(uint32(a) ^ uint32(b)), nil
	case wasm.OpI32Shl:
		return uint64(uint32(a) << (uint32(b) & 31)), nil
	case wasm.OpI32ShrS:
		return i32u(int32(uint32(a)) >> (uint32(b) & 31)), nil
	case wasm.OpI32ShrU:
		return uint64(uint32(a) >> (uint32(b) & 31)), nil
	case wasm.OpI32Rotl:
		return uint64(bits.RotateLeft32(uint32(a), int(uint32(b)&31))), nil
	case wasm.OpI32Rotr:
		return uint64(bits.RotateLeft32(uint32(a), -int(uint32(b)&31))), nil

	// --- i64 numeric
	case wasm.OpI64Add:
		return a + b, nil
	case wasm.OpI64Sub:
		return a - b, nil
	case wasm.OpI64Mul:
		return a * b, nil
	case wasm.OpI64DivS:
		x, y := int64(a), int64(b)
		if y == 0 {
			return 0, ErrDivByZero
		}
		if x == math.MinInt64 && y == -1 {
			return 0, ErrIntOverflow
		}
		return uint64(x / y), nil
	case wasm.OpI64DivU:
		if b == 0 {
			return 0, ErrDivByZero
		}
		return a / b, nil
	case wasm.OpI64RemS:
		x, y := int64(a), int64(b)
		if y == 0 {
			return 0, ErrDivByZero
		}
		if x == math.MinInt64 && y == -1 {
			return 0, nil
		}
		return uint64(x % y), nil
	case wasm.OpI64RemU:
		if b == 0 {
			return 0, ErrDivByZero
		}
		return a % b, nil
	case wasm.OpI64And:
		return a & b, nil
	case wasm.OpI64Or:
		return a | b, nil
	case wasm.OpI64Xor:
		return a ^ b, nil
	case wasm.OpI64Shl:
		return a << (b & 63), nil
	case wasm.OpI64ShrS:
		return uint64(int64(a) >> (b & 63)), nil
	case wasm.OpI64ShrU:
		return a >> (b & 63), nil
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(a, int(b&63)), nil
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(a, -int(b&63)), nil

	// --- f32 numeric
	case wasm.OpF32Add:
		return f32u(uf32(a) + uf32(b)), nil
	case wasm.OpF32Sub:
		return f32u(uf32(a) - uf32(b)), nil
	case wasm.OpF32Mul:
		return f32u(uf32(a) * uf32(b)), nil
	case wasm.OpF32Div:
		return f32u(uf32(a) / uf32(b)), nil
	case wasm.OpF32Min:
		return f32u(float32(fmin(float64(uf32(a)), float64(uf32(b))))), nil
	case wasm.OpF32Max:
		return f32u(float32(fmax(float64(uf32(a)), float64(uf32(b))))), nil
	case wasm.OpF32Copysign:
		return f32u(float32(math.Copysign(float64(uf32(a)), float64(uf32(b))))), nil

	// --- f64 numeric
	case wasm.OpF64Add:
		return f64u(uf64(a) + uf64(b)), nil
	case wasm.OpF64Sub:
		return f64u(uf64(a) - uf64(b)), nil
	case wasm.OpF64Mul:
		return f64u(uf64(a) * uf64(b)), nil
	case wasm.OpF64Div:
		return f64u(uf64(a) / uf64(b)), nil
	case wasm.OpF64Min:
		return f64u(fmin(uf64(a), uf64(b))), nil
	case wasm.OpF64Max:
		return f64u(fmax(uf64(a), uf64(b))), nil
	case wasm.OpF64Copysign:
		return f64u(math.Copysign(uf64(a), uf64(b))), nil

	// --- i32 comparison
	case wasm.OpI32Eq:
		return b2u(uint32(a) == uint32(b)), nil
	case wasm.OpI32Ne:
		return b2u(uint32(a) != uint32(b)), nil
	case wasm.OpI32LtS:
		return b2u(int32(uint32(a)) < int32(uint32(b))), nil
	case wasm.OpI32LtU:
		return b2u(uint32(a) < uint32(b)), nil
	case wasm.OpI32GtS:
		return b2u(int32(uint32(a)) > int32(uint32(b))), nil
	case wasm.OpI32GtU:
		return b2u(uint32(a) > uint32(b)), nil
	case wasm.OpI32LeS:
		return b2u(int32(uint32(a)) <= int32(uint32(b))), nil
	case wasm.OpI32LeU:
		return b2u(uint32(a) <= uint32(b)), nil
	case wasm.OpI32GeS:
		return b2u(int32(uint32(a)) >= int32(uint32(b))), nil
	case wasm.OpI32GeU:
		return b2u(uint32(a) >= uint32(b)), nil

	// --- i64 comparison
	case wasm.OpI64Eq:
		return b2u(a == b), nil
	case wasm.OpI64Ne:
		return b2u(a != b), nil
	case wasm.OpI64LtS:
		return b2u(int64(a) < int64(b)), nil
	case wasm.OpI64LtU:
		return b2u(a < b), nil
	case wasm.OpI64GtS:
		return b2u(int64(a) > int64(b)), nil
	case wasm.OpI64GtU:
		return b2u(a > b), nil
	case wasm.OpI64LeS:
		return b2u(int64(a) <= int64(b)), nil
	case wasm.OpI64LeU:
		return b2u(a <= b), nil
	case wasm.OpI64GeS:
		return b2u(int64(a) >= int64(b)), nil
	case wasm.OpI64GeU:
		return b2u(a >= b), nil

	// --- f32 comparison
	case wasm.OpF32Eq:
		return b2u(uf32(a) == uf32(b)), nil
	case wasm.OpF32Ne:
		return b2u(uf32(a) != uf32(b)), nil
	case wasm.OpF32Lt:
		return b2u(uf32(a) < uf32(b)), nil
	case wasm.OpF32Gt:
		return b2u(uf32(a) > uf32(b)), nil
	case wasm.OpF32Le:
		return b2u(uf32(a) <= uf32(b)), nil
	case wasm.OpF32Ge:
		return b2u(uf32(a) >= uf32(b)), nil

	// --- f64 comparison
	case wasm.OpF64Eq:
		return b2u(uf64(a) == uf64(b)), nil
	case wasm.OpF64Ne:
		return b2u(uf64(a) != uf64(b)), nil
	case wasm.OpF64Lt:
		return b2u(uf64(a) < uf64(b)), nil
	case wasm.OpF64Gt:
		return b2u(uf64(a) > uf64(b)), nil
	case wasm.OpF64Le:
		return b2u(uf64(a) <= uf64(b)), nil
	case wasm.OpF64Ge:
		return b2u(uf64(a) >= uf64(b)), nil
	}
	return 0, &UnknownOpcodeError{Op: op}
}

// fastLoad reads width bytes little-endian at a (the caller has already
// bounds-checked [a, a+width)) and applies the load's extension. It is the
// fused engine's memory fast path: one word access instead of loadBits's
// byte loop, with identical results.
func fastLoad(mem []byte, a uint64, width, ext uint32) uint64 {
	var v uint64
	switch width {
	case 1:
		v = uint64(mem[a])
	case 2:
		v = uint64(binary.LittleEndian.Uint16(mem[a:]))
	case 4:
		v = uint64(binary.LittleEndian.Uint32(mem[a:]))
	default:
		v = binary.LittleEndian.Uint64(mem[a:])
	}
	switch ext {
	case extI32S8:
		v = uint64(uint32(int32(int8(v))))
	case extI64S8:
		v = uint64(int64(int8(v)))
	case extI32S16:
		v = uint64(uint32(int32(int16(v))))
	case extI64S16:
		v = uint64(int64(int16(v)))
	case extI64S32:
		v = uint64(int64(int32(uint32(v))))
	}
	return v
}

// fastStore writes the low width bytes of v little-endian at a (the caller
// has already bounds-checked the range and recorded it dirty).
func fastStore(mem []byte, a uint64, width uint32, v uint64) {
	switch width {
	case 1:
		mem[a] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(mem[a:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(mem[a:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(mem[a:], v)
	}
}

// FuseStats summarises the fusion pass over a compiled artifact.
type FuseStats struct {
	// Instrs is the total original instruction count across all functions.
	Instrs int
	// Fused is how many of those instructions are covered by fused spans.
	Fused int
	// Spans is the number of superinstructions emitted.
	Spans int
}

// FuseStats reports how much of the module the fusion pass covered.
func (cm *CompiledModule) FuseStats() FuseStats {
	var s FuseStats
	for i := range cm.funcs {
		cf := &cm.funcs[i]
		s.Instrs += len(cf.body)
		for pc := 0; pc < len(cf.fused); {
			if w := fusedWidth(cf.fused[pc].Op); w > 0 {
				s.Spans++
				s.Fused += w
				pc += w
			} else {
				pc++
			}
		}
	}
	return s
}
