// Package weights defines WebAssembly instruction weight tables (paper
// §3.7) and the micro-benchmark harness that derives them (paper §5.2,
// Fig. 7 and Fig. 8). A weight table assigns every opcode a relative cost;
// the instrumentation enclave uses it to maintain the weighted instruction
// counter, and the interpreter uses it as its ground-truth cost model.
package weights

import (
	"crypto/sha256"
	"encoding/binary"

	"acctee/internal/wasm"
)

// Table maps opcodes to weights. Structural delimiters (end, else) always
// weigh zero: they mark block boundaries and are free at runtime in the
// paper's counting model.
type Table struct {
	w [256]uint64
}

// Weight returns the weight of op.
func (t *Table) Weight(op wasm.Opcode) uint64 { return t.w[op] }

// Set overrides the weight of op. AccTEE supports runtime weight
// adjustments so providers can tune tables without releasing new enclaves
// (paper §3.7). The interpreter snapshots instruction weights at
// instantiation (interp.CostModel requires InstrCost to be pure), so an
// adjustment takes effect for VMs instantiated after the call, never for
// executions already in flight.
func (t *Table) Set(op wasm.Opcode, w uint64) {
	if op == wasm.OpEnd || op == wasm.OpElse {
		return
	}
	t.w[op] = w
}

// Clone returns a copy of the table.
func (t *Table) Clone() *Table {
	c := *t
	return &c
}

// InstrCost implements interp.CostModel's instruction half.
func (t *Table) InstrCost(op wasm.Opcode) uint64 { return t.w[op] }

// MemCost implements interp.CostModel; the plain weight table charges
// nothing extra for memory traffic (the SGX substrate layers EPC penalties
// on top).
func (t *Table) MemCost(addr, width uint32, store bool, memSize uint32) uint64 { return 0 }

// Unit returns the unweighted table: every executable instruction costs 1.
// This is the paper's plain "instruction counter" (§3.5).
func Unit() *Table {
	t := &Table{}
	for _, op := range wasm.AllOpcodes() {
		t.w[op] = 1
	}
	t.w[wasm.OpEnd] = 0
	t.w[wasm.OpElse] = 0
	return t
}

// Calibrated returns the weighted table modelled on the paper's Fig. 7
// measurements: ~74% of instructions below 10 cycles, floor/ceil-class
// instructions around 32, divisions and square roots above 50. Weights are
// expressed in cycles. Hosts may re-derive the table with Measure (see
// measure.go) — the paper expects minor per-CPU differences.
func Calibrated() *Table {
	t := Unit()
	cheap := uint64(3)
	for _, op := range wasm.AllOpcodes() {
		t.w[op] = cheap
	}
	t.w[wasm.OpEnd] = 0
	t.w[wasm.OpElse] = 0

	// Mid-cost: multiplications, float arithmetic, conversions.
	for _, op := range []wasm.Opcode{
		wasm.OpI32Mul, wasm.OpI64Mul,
		wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul,
		wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul,
		wasm.OpF32ConvertI32S, wasm.OpF32ConvertI32U, wasm.OpF32ConvertI64S,
		wasm.OpF32ConvertI64U, wasm.OpF64ConvertI32S, wasm.OpF64ConvertI32U,
		wasm.OpF64ConvertI64S, wasm.OpF64ConvertI64U,
		wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI32TruncF64S,
		wasm.OpI32TruncF64U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U,
		wasm.OpI64TruncF64S, wasm.OpI64TruncF64U,
	} {
		t.w[op] = 8
	}
	// Rounding class (paper: f32.floor / f64.ceil need up to 32 cycles).
	for _, op := range []wasm.Opcode{
		wasm.OpF32Ceil, wasm.OpF32Floor, wasm.OpF32Trunc, wasm.OpF32Nearest,
		wasm.OpF64Ceil, wasm.OpF64Floor, wasm.OpF64Trunc, wasm.OpF64Nearest,
	} {
		t.w[op] = 32
	}
	// Expensive class (paper: i64.div_s, f32.sqrt > 50 cycles).
	for _, op := range []wasm.Opcode{
		wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU,
		wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU,
		wasm.OpF32Div, wasm.OpF64Div, wasm.OpF32Sqrt, wasm.OpF64Sqrt,
	} {
		t.w[op] = 56
	}
	// Calls are charged at a fixed dispatch weight; callee bodies account
	// for themselves.
	t.w[wasm.OpCall] = 10
	t.w[wasm.OpCallIndirect] = 14
	t.w[wasm.OpMemoryGrow] = 64
	return t
}

// Hash commits to the full weight table; instrumentation evidence carries
// it so both parties agree on the weights in force (§3.7: "they are part of
// the mutually trusted, attested execution environment").
func (t *Table) Hash() [32]byte {
	var b [256 * 8]byte
	for i, w := range t.w {
		binary.LittleEndian.PutUint64(b[i*8:], w)
	}
	return sha256.Sum256(b[:])
}
