package weights

import (
	"fmt"
	"sort"
	"time"

	"acctee/internal/interp"
	"acctee/internal/wasm"
)

// This file is the paper's §5.2 measurement harness. Fig. 7 measures the
// cost of every non-memory instruction by executing it n times inside a
// loop and subtracting the loop baseline (the paper's TSC readings around
// n = 10,000 executions, here wall-clock ns on this engine). Fig. 8
// measures load/store cost against memory size and access pattern — the
// cache effects are real, the accesses hit real host memory.

// MeasureResult is one instruction's measured cost.
type MeasureResult struct {
	Op wasm.Opcode
	// NsPerInstr is the baseline-subtracted wall-clock cost.
	NsPerInstr float64
}

// Measurable reports whether Fig. 7 measures this opcode: numeric,
// comparison and conversion instructions (the paper's 127 instructions;
// loads/stores are measured separately in Fig. 8).
func Measurable(op wasm.Opcode) bool {
	if op.IsMemAccess() {
		return false
	}
	switch op {
	case wasm.OpUnreachable, wasm.OpNop, wasm.OpBlock, wasm.OpLoop, wasm.OpIf,
		wasm.OpElse, wasm.OpEnd, wasm.OpBr, wasm.OpBrIf, wasm.OpBrTable,
		wasm.OpReturn, wasm.OpCall, wasm.OpCallIndirect, wasm.OpDrop,
		wasm.OpSelect, wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee,
		wasm.OpGlobalGet, wasm.OpGlobalSet, wasm.OpMemorySize, wasm.OpMemoryGrow:
		return false
	}
	return true
}

// opOperands returns the operand types an opcode pops, derived from the
// same classification the validator uses.
func opOperands(op wasm.Opcode) ([]wasm.ValueType, bool) {
	type span struct {
		lo, hi wasm.Opcode
		in     []wasm.ValueType
	}
	spans := []span{
		{wasm.OpI32Eqz, wasm.OpI32Eqz, []wasm.ValueType{wasm.I32}},
		{wasm.OpI32Eq, wasm.OpI32GeU, []wasm.ValueType{wasm.I32, wasm.I32}},
		{wasm.OpI64Eqz, wasm.OpI64Eqz, []wasm.ValueType{wasm.I64}},
		{wasm.OpI64Eq, wasm.OpI64GeU, []wasm.ValueType{wasm.I64, wasm.I64}},
		{wasm.OpF32Eq, wasm.OpF32Ge, []wasm.ValueType{wasm.F32, wasm.F32}},
		{wasm.OpF64Eq, wasm.OpF64Ge, []wasm.ValueType{wasm.F64, wasm.F64}},
		{wasm.OpI32Clz, wasm.OpI32Popcnt, []wasm.ValueType{wasm.I32}},
		{wasm.OpI32Add, wasm.OpI32Rotr, []wasm.ValueType{wasm.I32, wasm.I32}},
		{wasm.OpI64Clz, wasm.OpI64Popcnt, []wasm.ValueType{wasm.I64}},
		{wasm.OpI64Add, wasm.OpI64Rotr, []wasm.ValueType{wasm.I64, wasm.I64}},
		{wasm.OpF32Abs, wasm.OpF32Sqrt, []wasm.ValueType{wasm.F32}},
		{wasm.OpF32Add, wasm.OpF32Copysign, []wasm.ValueType{wasm.F32, wasm.F32}},
		{wasm.OpF64Abs, wasm.OpF64Sqrt, []wasm.ValueType{wasm.F64}},
		{wasm.OpF64Add, wasm.OpF64Copysign, []wasm.ValueType{wasm.F64, wasm.F64}},
		{wasm.OpI32WrapI64, wasm.OpI32WrapI64, []wasm.ValueType{wasm.I64}},
		{wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, []wasm.ValueType{wasm.F32}},
		{wasm.OpI32TruncF64S, wasm.OpI32TruncF64U, []wasm.ValueType{wasm.F64}},
		{wasm.OpI64ExtendI32S, wasm.OpI64ExtendI32U, []wasm.ValueType{wasm.I32}},
		{wasm.OpI64TruncF32S, wasm.OpI64TruncF32U, []wasm.ValueType{wasm.F32}},
		{wasm.OpI64TruncF64S, wasm.OpI64TruncF64U, []wasm.ValueType{wasm.F64}},
		{wasm.OpF32ConvertI32S, wasm.OpF32ConvertI32U, []wasm.ValueType{wasm.I32}},
		{wasm.OpF32ConvertI64S, wasm.OpF32ConvertI64U, []wasm.ValueType{wasm.I64}},
		{wasm.OpF32DemoteF64, wasm.OpF32DemoteF64, []wasm.ValueType{wasm.F64}},
		{wasm.OpF64ConvertI32S, wasm.OpF64ConvertI32U, []wasm.ValueType{wasm.I32}},
		{wasm.OpF64ConvertI64S, wasm.OpF64ConvertI64U, []wasm.ValueType{wasm.I64}},
		{wasm.OpF64PromoteF32, wasm.OpF64PromoteF32, []wasm.ValueType{wasm.F32}},
		{wasm.OpI32ReinterpretF, wasm.OpI32ReinterpretF, []wasm.ValueType{wasm.F32}},
		{wasm.OpI64ReinterpretF, wasm.OpI64ReinterpretF, []wasm.ValueType{wasm.F64}},
		{wasm.OpF32ReinterpretI, wasm.OpF32ReinterpretI, []wasm.ValueType{wasm.I32}},
		{wasm.OpF64ReinterpretI, wasm.OpF64ReinterpretI, []wasm.ValueType{wasm.I64}},
	}
	for _, s := range spans {
		if op >= s.lo && op <= s.hi {
			return s.in, true
		}
	}
	// const instructions pop nothing
	switch op {
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		return []wasm.ValueType{}, true
	}
	return nil, false
}

func constFor(t wasm.ValueType) wasm.Instr {
	switch t {
	case wasm.I32:
		return wasm.ConstI32(37) // safe divisor, valid shift
	case wasm.I64:
		return wasm.ConstI64(41)
	case wasm.F32:
		return wasm.ConstF32(1.25)
	default:
		return wasm.ConstF64(2.5)
	}
}

// buildOpModule builds a module whose run(n) executes `op` n times.
func buildOpModule(op wasm.Opcode, unrolled int) (*wasm.Module, error) {
	in, ok := opOperands(op)
	if !ok {
		return nil, fmt.Errorf("weights: opcode %s has no operand spec", op)
	}
	b := wasm.NewModule("measure")
	f := b.Func("run", []wasm.ValueType{wasm.I32}, nil)
	i := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		for u := 0; u < unrolled; u++ {
			for _, t := range in {
				f.Emit(constFor(t))
			}
			f.Op(op)
			f.Op(wasm.OpDrop)
		}
	})
	b.ExportFunc("run", f.End())
	return b.Build()
}

// buildBaselineModule builds the same loop with operand pushes and drops
// but no measured instruction.
func buildBaselineModule(in []wasm.ValueType, unrolled int) (*wasm.Module, error) {
	b := wasm.NewModule("baseline")
	f := b.Func("run", []wasm.ValueType{wasm.I32}, nil)
	i := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		for u := 0; u < unrolled; u++ {
			for _, t := range in {
				f.Emit(constFor(t))
				f.Op(wasm.OpDrop)
			}
		}
	})
	b.ExportFunc("run", f.End())
	return b.Build()
}

func timeRun(m *wasm.Module, n uint64) (time.Duration, error) {
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := vm.InvokeExport("run", n); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// MeasureInstr measures one instruction's cost over n executions
// (paper: n = 10,000).
func MeasureInstr(op wasm.Opcode, n uint64) (MeasureResult, error) {
	const unroll = 8
	in, ok := opOperands(op)
	if !ok {
		return MeasureResult{}, fmt.Errorf("weights: cannot measure %s", op)
	}
	iters := n / unroll
	mod, err := buildOpModule(op, unroll)
	if err != nil {
		return MeasureResult{}, err
	}
	base, err := buildBaselineModule(in, unroll)
	if err != nil {
		return MeasureResult{}, err
	}
	// best-of-3 to shed scheduler noise
	var dOp, dBase time.Duration
	for trial := 0; trial < 3; trial++ {
		t1, err := timeRun(mod, iters)
		if err != nil {
			return MeasureResult{}, err
		}
		t2, err := timeRun(base, iters)
		if err != nil {
			return MeasureResult{}, err
		}
		if trial == 0 || t1 < dOp {
			dOp = t1
		}
		if trial == 0 || t2 < dBase {
			dBase = t2
		}
	}
	ns := float64(dOp-dBase) / float64(iters*unroll)
	if ns < 0 {
		ns = 0
	}
	return MeasureResult{Op: op, NsPerInstr: ns}, nil
}

// MeasureAll measures every Fig. 7 instruction and returns results sorted
// by cost ascending (the figure's x-axis ordering).
func MeasureAll(n uint64) ([]MeasureResult, error) {
	var out []MeasureResult
	for _, op := range wasm.AllOpcodes() {
		if !Measurable(op) {
			continue
		}
		r, err := MeasureInstr(op, n)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NsPerInstr < out[j].NsPerInstr })
	return out, nil
}

// Derive converts measurements into a weight table normalised so the
// cheapest instruction weighs 1 — the runtime weight adjustment the paper
// supports (§3.7).
func Derive(results []MeasureResult) *Table {
	t := Unit()
	if len(results) == 0 {
		return t
	}
	minNs := results[0].NsPerInstr
	for _, r := range results {
		if r.NsPerInstr < minNs && r.NsPerInstr > 0 {
			minNs = r.NsPerInstr
		}
	}
	if minNs <= 0 {
		minNs = 1
	}
	for _, r := range results {
		w := uint64(r.NsPerInstr/minNs + 0.5)
		if w < 1 {
			w = 1
		}
		t.Set(r.Op, w)
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 8: memory access costs

// MemPattern is the access pattern of a Fig. 8 run.
type MemPattern int

// Access patterns.
const (
	Linear MemPattern = iota + 1
	Random
)

// String names the pattern.
func (p MemPattern) String() string {
	if p == Linear {
		return "linear"
	}
	return "random"
}

// MemMeasure is one Fig. 8 data point.
type MemMeasure struct {
	Type     wasm.ValueType
	Store    bool
	Pattern  MemPattern
	MemBytes int
	NsPerOp  float64
}

// buildMemModule builds run(n) performing n loads or stores of the given
// type with the given pattern across memBytes of linear memory.
func buildMemModule(t wasm.ValueType, store bool, pattern MemPattern, memBytes int) (*wasm.Module, error) {
	pages := uint32((memBytes + wasm.PageSize - 1) / wasm.PageSize)
	b := wasm.NewModule("mem-measure")
	b.Memory(pages, pages)
	f := b.Func("run", []wasm.ValueType{wasm.I32}, nil)
	i := f.Local(wasm.I32)
	addr := f.Local(wasm.I32)
	var loadOp, storeOp wasm.Opcode
	var width int32
	switch t {
	case wasm.I32:
		loadOp, storeOp, width = wasm.OpI32Load, wasm.OpI32Store, 4
	case wasm.I64:
		loadOp, storeOp, width = wasm.OpI64Load, wasm.OpI64Store, 8
	case wasm.F32:
		loadOp, storeOp, width = wasm.OpF32Load, wasm.OpF32Store, 4
	default:
		loadOp, storeOp, width = wasm.OpF64Load, wasm.OpF64Store, 8
	}
	slots := int32(memBytes) / width
	mask := int32(1)
	for mask*2 <= slots {
		mask *= 2
	}
	mask-- // power-of-two slot mask
	f.I32Const(0).LocalSet(addr)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		// next address
		if pattern == Linear {
			f.LocalGet(addr).I32Const(1).Op(wasm.OpI32Add)
		} else {
			// LCG hop: addr = addr*1664525 + 1013904223
			f.LocalGet(addr).I32Const(1664525).Op(wasm.OpI32Mul)
			f.I32Const(1013904223).Op(wasm.OpI32Add)
		}
		f.I32Const(mask).Op(wasm.OpI32And).LocalSet(addr)
		f.LocalGet(addr).I32Const(width).Op(wasm.OpI32Mul)
		if store {
			f.Emit(constFor(t))
			f.Store(storeOp, 0)
		} else {
			f.Load(loadOp, 0)
			f.Op(wasm.OpDrop)
		}
	})
	b.ExportFunc("run", f.End())
	return b.Build()
}

// MeasureMem measures one Fig. 8 configuration over n accesses.
func MeasureMem(t wasm.ValueType, store bool, pattern MemPattern, memBytes int, n uint64) (MemMeasure, error) {
	mod, err := buildMemModule(t, store, pattern, memBytes)
	if err != nil {
		return MemMeasure{}, err
	}
	d, err := timeRun(mod, n)
	if err != nil {
		return MemMeasure{}, err
	}
	return MemMeasure{
		Type: t, Store: store, Pattern: pattern, MemBytes: memBytes,
		NsPerOp: float64(d) / float64(n),
	}, nil
}
