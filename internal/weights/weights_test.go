package weights_test

import (
	"testing"

	"acctee/internal/wasm"
	"acctee/internal/weights"
)

func TestUnitWeights(t *testing.T) {
	u := weights.Unit()
	if u.Weight(wasm.OpI32Add) != 1 || u.Weight(wasm.OpF64Sqrt) != 1 {
		t.Error("unit table must weigh executable instructions 1")
	}
	if u.Weight(wasm.OpEnd) != 0 || u.Weight(wasm.OpElse) != 0 {
		t.Error("structural delimiters must weigh 0")
	}
}

func TestCalibratedShape(t *testing.T) {
	c := weights.Calibrated()
	// Paper Fig. 7: majority cheap, floor/ceil mid, div/sqrt expensive.
	if !(c.Weight(wasm.OpI32Add) < c.Weight(wasm.OpF64Floor)) {
		t.Error("add should be cheaper than floor")
	}
	if !(c.Weight(wasm.OpF64Floor) < c.Weight(wasm.OpI64DivS)) {
		t.Error("floor should be cheaper than div")
	}
	if !(c.Weight(wasm.OpF32Sqrt) > 50) {
		t.Error("sqrt should weigh > 50 cycles (paper)")
	}
	cheap := 0
	total := 0
	for _, op := range wasm.AllOpcodes() {
		if !weights.Measurable(op) {
			continue
		}
		total++
		if c.Weight(op) < 10 {
			cheap++
		}
	}
	// Paper: 74% of instructions execute in <10 cycles.
	if ratio := float64(cheap) / float64(total); ratio < 0.6 {
		t.Errorf("cheap instruction ratio %.2f, want most instructions cheap", ratio)
	}
}

func TestSetIgnoresStructural(t *testing.T) {
	u := weights.Unit()
	u.Set(wasm.OpEnd, 99)
	if u.Weight(wasm.OpEnd) != 0 {
		t.Error("Set must not assign weight to end")
	}
	u.Set(wasm.OpI32Mul, 7)
	if u.Weight(wasm.OpI32Mul) != 7 {
		t.Error("Set failed")
	}
}

func TestHashDistinguishesTables(t *testing.T) {
	a, b := weights.Unit(), weights.Unit()
	if a.Hash() != b.Hash() {
		t.Error("identical tables hash differently")
	}
	b.Set(wasm.OpI32Add, 2)
	if a.Hash() == b.Hash() {
		t.Error("different tables hash equally")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := weights.Unit()
	c := a.Clone()
	c.Set(wasm.OpI32Add, 5)
	if a.Weight(wasm.OpI32Add) != 1 {
		t.Error("clone shares state with original")
	}
}

func TestMeasurableCount(t *testing.T) {
	n := 0
	for _, op := range wasm.AllOpcodes() {
		if weights.Measurable(op) {
			n++
		}
	}
	// The paper measures 127 non-memory instructions; our opcode set
	// classifies 127 numeric/comparison/conversion instructions too.
	if n != 127 {
		t.Errorf("measurable instructions = %d, want 127", n)
	}
}

func TestMeasureInstrRuns(t *testing.T) {
	r, err := weights.MeasureInstr(wasm.OpI32Add, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerInstr < 0 {
		t.Errorf("negative cost %v", r.NsPerInstr)
	}
}

func TestMeasureMemRuns(t *testing.T) {
	m, err := weights.MeasureMem(wasm.I64, false, weights.Random, 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if m.NsPerOp <= 0 {
		t.Errorf("nonsensical ns/op %v", m.NsPerOp)
	}
}

func TestDeriveNormalises(t *testing.T) {
	res := []weights.MeasureResult{
		{Op: wasm.OpI32Add, NsPerInstr: 10},
		{Op: wasm.OpF64Sqrt, NsPerInstr: 52},
	}
	tbl := weights.Derive(res)
	if tbl.Weight(wasm.OpI32Add) != 1 {
		t.Errorf("cheapest weight = %d, want 1", tbl.Weight(wasm.OpI32Add))
	}
	if tbl.Weight(wasm.OpF64Sqrt) != 5 {
		t.Errorf("sqrt weight = %d, want 5", tbl.Weight(wasm.OpF64Sqrt))
	}
}
