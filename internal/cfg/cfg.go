// Package cfg decomposes flat structured WebAssembly function bodies into
// basic blocks (segments), builds the control-flow graph between them, and
// computes dominators and natural loops. The instrumentation enclave's
// flow-based and loop-based optimisations (paper §3.6) are driven by the
// analyses in this package.
package cfg

import (
	"fmt"
	"sort"

	"acctee/internal/wasm"
)

// Exit is the pseudo-block ID representing function exit.
const Exit = -1

// Block is one basic block of a function body: the half-open instruction
// range [Start, Term] where Term is the index of the terminating control
// instruction (always included in the block).
type Block struct {
	ID    int
	Start int // first instruction index
	Term  int // terminator instruction index (flush/insert point)
	// Succs are successor block IDs; Exit (-1) marks function exit.
	Succs []int
	// Preds are predecessor block IDs (Exit never appears).
	Preds []int
}

// Graph is the CFG of one function body.
type Graph struct {
	Body   []wasm.Instr
	Blocks []*Block
	// Match pairs structured-control instructions: for block/loop/if the
	// matching end (and else); for else/end the header. The function-final
	// end has no entry. Consumers (the interpreter's lowering pass) reuse
	// it instead of re-scanning the body.
	Match map[int]MatchInfo
	// byStart maps an instruction index to the block starting there.
	byStart map[int]int
}

// Build scans a function body and produces its CFG.
//
// Block boundaries (segment starts) are: the body start, the instruction
// after every block/loop/if opener, after every else, after every end, and
// after every br/br_if/br_table/return/unreachable. This matches the
// paper's basic-block granularity: every point where control can diverge or
// merge starts a new block.
func Build(body []wasm.Instr) (*Graph, error) {
	if err := wasm.ValidateStructure(body); err != nil {
		return nil, err
	}
	matching, err := matchControl(body)
	if err != nil {
		return nil, err
	}

	// Pass 1: find block start positions.
	starts := map[int]bool{0: true}
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf, wasm.OpElse, wasm.OpEnd,
			wasm.OpBr, wasm.OpBrIf, wasm.OpBrTable, wasm.OpReturn, wasm.OpUnreachable:
			if pc+1 < len(body) {
				starts[pc+1] = true
			}
		}
	}

	g := &Graph{Body: body, Match: matching, byStart: make(map[int]int)}
	// Pass 2: materialise blocks in order.
	order := make([]int, 0, len(starts))
	for pc := range starts {
		order = append(order, pc)
	}
	sortInts(order)
	for _, s := range order {
		id := len(g.Blocks)
		g.Blocks = append(g.Blocks, &Block{ID: id, Start: s})
		g.byStart[s] = id
	}
	// Terminator of each block = next start - 1 (or last instruction).
	for i, b := range g.Blocks {
		if i+1 < len(g.Blocks) {
			b.Term = g.Blocks[i+1].Start - 1
		} else {
			b.Term = len(body) - 1
		}
	}

	// Pass 3: edges. We need, for each branch depth at a pc, the target
	// continuation pc. Maintain a label stack while walking.
	type openLabel struct {
		isLoop bool
		hdrPC  int
		endPC  int
	}
	var labels []openLabel
	targetPC := func(depth uint32) (int, error) {
		if int(depth) == len(labels) {
			// The implicit function label: branching to it returns.
			return len(body), nil
		}
		if int(depth) > len(labels) {
			return 0, fmt.Errorf("cfg: branch depth %d out of range", depth)
		}
		l := labels[len(labels)-1-int(depth)]
		if l.isLoop {
			return l.hdrPC + 1, nil
		}
		return l.endPC + 1, nil
	}
	addEdge := func(from int, toPC int) {
		b := g.Blocks[from]
		if toPC >= len(body) {
			b.Succs = appendUnique(b.Succs, Exit)
			return
		}
		to, ok := g.byStart[toPC]
		if !ok {
			// The target must be a block start by construction.
			panic(fmt.Sprintf("cfg: branch target %d is not a block start", toPC))
		}
		b.Succs = appendUnique(b.Succs, to)
	}

	for pc, in := range body {
		blk := g.blockAt(pc)
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop:
			m := matching[pc]
			labels = append(labels, openLabel{isLoop: in.Op == wasm.OpLoop, hdrPC: pc, endPC: m.EndPC})
			if pc == blk.Term {
				addEdge(blk.ID, pc+1) // fallthrough into the structure
			}
		case wasm.OpIf:
			m := matching[pc]
			labels = append(labels, openLabel{hdrPC: pc, endPC: m.EndPC})
			addEdge(blk.ID, pc+1) // then branch
			if m.ElsePC >= 0 {
				addEdge(blk.ID, m.ElsePC+1)
			} else {
				addEdge(blk.ID, m.EndPC+1) // false with no else skips body
			}
		case wasm.OpElse:
			// fallthrough from the then-arm jumps to after the if's end
			m := matching[pc]
			addEdge(blk.ID, m.EndPC+1)
		case wasm.OpEnd:
			if len(labels) > 0 {
				labels = labels[:len(labels)-1]
			}
			addEdge(blk.ID, pc+1) // fallthrough (pc+1 == len -> Exit)
		case wasm.OpBr:
			t, err := targetPC(in.Idx)
			if err != nil {
				return nil, err
			}
			addEdge(blk.ID, t)
		case wasm.OpBrIf:
			t, err := targetPC(in.Idx)
			if err != nil {
				return nil, err
			}
			addEdge(blk.ID, t)
			addEdge(blk.ID, pc+1)
		case wasm.OpBrTable:
			for _, d := range in.Table {
				t, err := targetPC(d)
				if err != nil {
					return nil, err
				}
				addEdge(blk.ID, t)
			}
		case wasm.OpReturn, wasm.OpUnreachable:
			g.Blocks[blk.ID].Succs = appendUnique(g.Blocks[blk.ID].Succs, Exit)
		}
	}

	// Preds.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s != Exit {
				g.Blocks[s].Preds = appendUnique(g.Blocks[s].Preds, b.ID)
			}
		}
	}
	return g, nil
}

// Leaders returns the segment-leader bitmap of the body: true at every
// basic-block start, and at the instruction following any occurrence of the
// given opcodes. Accounting consumers (the interpreter's lowering pass, the
// fusion pass) split segments after host-visible points — call,
// call_indirect, memory.grow — so counters are settled whenever host code
// can observe the VM; superinstruction fusion must never span a leader.
func (g *Graph) Leaders(splitAfter ...wasm.Opcode) []bool {
	leader := make([]bool, len(g.Body))
	for _, b := range g.Blocks {
		leader[b.Start] = true
	}
	for pc, in := range g.Body {
		for _, op := range splitAfter {
			if in.Op == op && pc+1 < len(g.Body) {
				leader[pc+1] = true
			}
		}
	}
	return leader
}

// RangeCost sums costFn over the instruction range body[start..term]
// inclusive. It is the single definition of a code range's weight, shared
// by the instrumentation enclave (counter increments) and the interpreter's
// lowering pass (block-batched accounting), so the two can never disagree.
func RangeCost(body []wasm.Instr, start, term int, costFn func(wasm.Opcode) uint64) uint64 {
	var sum uint64
	for pc := start; pc <= term; pc++ {
		sum += costFn(body[pc].Op)
	}
	return sum
}

// BlockCosts returns, for every block of the graph, the summed costFn
// weight of its instructions (the per-block increment a naive counter
// placement would charge).
func (g *Graph) BlockCosts(costFn func(wasm.Opcode) uint64) []uint64 {
	costs := make([]uint64, len(g.Blocks))
	for i, b := range g.Blocks {
		costs[i] = RangeCost(g.Body, b.Start, b.Term, costFn)
	}
	return costs
}

// blockAt returns the block containing instruction pc.
func (g *Graph) blockAt(pc int) *Block {
	// binary search over Starts
	lo, hi := 0, len(g.Blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.Blocks[mid].Start <= pc {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return g.Blocks[lo]
}

// BlockAt exposes blockAt for analyses in other packages.
func (g *Graph) BlockAt(pc int) *Block { return g.blockAt(pc) }

// MatchInfo pre-resolves one structured-control instruction: for
// block/loop/if EndPC (and ElsePC, -1 without an else); for else/end the
// header, with the else's EndPC pointing at its if's end.
type MatchInfo struct {
	EndPC  int
	ElsePC int
	HdrPC  int
}

// matchControl pairs every block/loop/if with its end (and else), and every
// else/end with its header.
func matchControl(body []wasm.Instr) (map[int]MatchInfo, error) {
	m := make(map[int]MatchInfo)
	var stack []int
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			m[pc] = MatchInfo{ElsePC: -1}
			stack = append(stack, pc)
		case wasm.OpElse:
			if len(stack) == 0 {
				return nil, fmt.Errorf("cfg: else outside if")
			}
			hdr := stack[len(stack)-1]
			mi := m[hdr]
			mi.ElsePC = pc
			m[hdr] = mi
			m[pc] = MatchInfo{HdrPC: hdr, ElsePC: -1}
		case wasm.OpEnd:
			if len(stack) == 0 {
				continue // function-final end
			}
			hdr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			mi := m[hdr]
			mi.EndPC = pc
			m[hdr] = mi
			// point the else (if any) at the end too
			if mi.ElsePC >= 0 {
				e := m[mi.ElsePC]
				e.EndPC = pc
				m[mi.ElsePC] = e
			}
			m[pc] = MatchInfo{HdrPC: hdr, ElsePC: -1}
		}
	}
	// fix else entries: their endPC set above via header
	for pc, in := range body {
		if in.Op == wasm.OpElse {
			mi := m[pc]
			hdr := mi.HdrPC
			mi.EndPC = m[hdr].EndPC
			m[pc] = mi
		}
	}
	return m, nil
}

// Dominators computes the immediate-dominator array using the iterative
// data-flow algorithm (Cooper/Harvey/Kennedy). idom[0] == 0 (entry).
// Unreachable blocks get idom -2.
func (g *Graph) Dominators() []int {
	n := len(g.Blocks)
	const unset = -2
	idom := make([]int, n)
	for i := range idom {
		idom[i] = unset
	}
	// reverse postorder over reachable blocks
	rpo := g.ReversePostorder()
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, b := range rpo {
		pos[b] = i
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := unset
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == unset {
					continue
				}
				if newIdom == unset {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != unset && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given the idom array. Unreachable
// blocks are dominated by nothing.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -2 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = idom[b]
	}
}

// ReversePostorder returns reachable block IDs in reverse postorder.
func (g *Graph) ReversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if s != Exit && !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if len(g.Blocks) > 0 {
		dfs(0)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of blocks reachable from entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if s != Exit && !seen[s] {
				dfs(s)
			}
		}
	}
	if len(g.Blocks) > 0 {
		dfs(0)
	}
	return seen
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func sortInts(s []int) {
	sort.Ints(s)
}
