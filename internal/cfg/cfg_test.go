package cfg_test

import (
	"testing"

	"acctee/internal/cfg"
	"acctee/internal/wasm"
)

// diamondBody builds: if (p0) {x=1} else {x=2}; return x
func diamondBody() []wasm.Instr {
	b := wasm.NewModule("d")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	x := f.Local(wasm.I32)
	f.LocalGet(0)
	f.If(wasm.BlockEmpty, func() {
		f.I32Const(1).LocalSet(x)
	}, func() {
		f.I32Const(2).LocalSet(x)
	})
	f.LocalGet(x)
	b.ExportFunc("f", f.End())
	return b.MustBuild().Funcs[0].Body
}

func TestDiamondCFG(t *testing.T) {
	g, err := cfg.Build(diamondBody())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Expected blocks: entry(..if), then-arm(..else), else-arm(..end),
	// merge(..final end). The entry must have two successors.
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v, want 2", entry.Succs)
	}
	idom := g.Dominators()
	// entry dominates everything reachable
	for _, b := range g.Blocks {
		if g.Reachable()[b.ID] && !cfg.Dominates(idom, 0, b.ID) {
			t.Errorf("entry does not dominate block %d", b.ID)
		}
	}
	// then-arm does not dominate the merge block
	thenBlk := entry.Succs[0]
	merge := -1
	for _, b := range g.Blocks {
		if len(b.Preds) >= 2 {
			merge = b.ID
		}
	}
	if merge < 0 {
		t.Fatal("no merge block found")
	}
	if cfg.Dominates(idom, thenBlk, merge) {
		t.Errorf("then-arm %d should not dominate merge %d", thenBlk, merge)
	}
}

func TestLoopCFGHasBackEdge(t *testing.T) {
	b := wasm.NewModule("l")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, nil)
	i := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.Op(wasm.OpNop)
	})
	b.ExportFunc("f", f.End())
	g, err := cfg.Build(b.MustBuild().Funcs[0].Body)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Some block must have a successor with a smaller start (back edge).
	back := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s != cfg.Exit && g.Blocks[s].Start <= blk.Start {
				back = true
			}
		}
	}
	if !back {
		t.Error("no back edge found in loop CFG")
	}
	// Header block (the one targeted by the back edge) must have 2 preds.
	found := false
	for _, blk := range g.Blocks {
		if len(blk.Preds) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no block with two predecessors (loop header)")
	}
}

func TestStraightLineSingleBlock(t *testing.T) {
	b := wasm.NewModule("s")
	f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
	f.I32Const(1).I32Const(2).Op(wasm.OpI32Add)
	b.ExportFunc("f", f.End())
	g, err := cfg.Build(b.MustBuild().Funcs[0].Body)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(g.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != cfg.Exit {
		t.Errorf("succs = %v, want [Exit]", g.Blocks[0].Succs)
	}
}

func TestUnreachableBlockDetected(t *testing.T) {
	b := wasm.NewModule("u")
	f := b.Func("f", nil, nil)
	f.Block(wasm.BlockEmpty, func() {
		f.Br(0)
		f.Op(wasm.OpNop) // dead
	})
	b.ExportFunc("f", f.End())
	g, err := cfg.Build(b.MustBuild().Funcs[0].Body)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	reach := g.Reachable()
	dead := 0
	for id, r := range reach {
		if !r {
			dead++
			_ = id
		}
	}
	if dead == 0 {
		t.Error("expected at least one unreachable block")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g, err := cfg.Build(diamondBody())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != 0 {
		t.Errorf("rpo = %v, want entry first", rpo)
	}
}
