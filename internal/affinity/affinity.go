// Package affinity hands out processor-sticky lane assignments for
// sharded data structures on the request hot path.
//
// The previous shard pick — a single shared atomic counter bumped on every
// append — is a guaranteed cache-line ping-pong once more than a couple of
// cores drive the path: every pick dirties the same line, and the
// round-robin result sprays consecutive picks from one goroutine across
// every lane, so a burst from one core touches every lane's lock line in
// turn. A Picker inverts both properties: picks are *sticky* (a goroutine
// keeps hitting the lane it was assigned, so its appends serialise on a
// lane lock that is hot in its own cache and cold in everyone else's) and
// the shared counter is only touched on *rebalance*, once every
// rebalanceEvery picks, which keeps lanes evenly loaded over time without
// per-pick cross-core traffic.
//
// Stickiness rides on sync.Pool's per-P caching: a token Put after a pick
// lands in the current P's private slot and the next Get on that P returns
// it without synchronisation. Tokens migrate or vanish under GC exactly
// like pooled buffers do — that is the "occasional rebalance", and it is
// harmless: lane choice is a performance hint, never a correctness input.
package affinity

import (
	"sync"
	"sync/atomic"
)

// token is one sticky assignment: the lane and how many picks remain
// before the next round-robin rebalance.
type token struct {
	lane uint32
	left uint32
}

// Picker assigns lanes in [0, Lanes) with processor affinity.
type Picker struct {
	lanes uint32
	every uint32
	rr    atomic.Uint32 // advanced only on (re)assignment, not per pick
	pool  sync.Pool     // *token; per-P private slot carries the stickiness
}

// DefaultRebalanceEvery is the pick budget per assignment: long enough to
// amortise the shared counter to noise, short enough that a skewed
// goroutine population redistributes within a few thousand operations.
const DefaultRebalanceEvery = 64

// NewPicker creates a picker over `lanes` lanes, rebalancing each sticky
// assignment after `every` picks (0 selects DefaultRebalanceEvery).
func NewPicker(lanes, every int) *Picker {
	if lanes < 1 {
		lanes = 1
	}
	if every < 1 {
		every = DefaultRebalanceEvery
	}
	return &Picker{lanes: uint32(lanes), every: uint32(every)}
}

// Lanes returns the lane count.
func (p *Picker) Lanes() int { return int(p.lanes) }

// Pick returns a lane in [0, Lanes). Steady state touches only the
// current P's pool slot; the shared round-robin counter is hit once per
// rebalance window (and on the rare token loss under GC).
func (p *Picker) Pick() uint32 {
	var t *token
	if v := p.pool.Get(); v != nil {
		t = v.(*token)
	}
	if t == nil || t.left == 0 {
		if t == nil {
			t = new(token)
		}
		t.lane = (p.rr.Add(1) - 1) % p.lanes
		t.left = p.every
	}
	lane := t.lane
	t.left--
	p.pool.Put(t)
	return lane
}
