package affinity_test

import (
	"sync"
	"testing"

	"acctee/internal/affinity"
)

// TestPickRange: every pick lands inside [0, lanes), across odd lane
// counts and a pick volume spanning many rebalance windows.
func TestPickRange(t *testing.T) {
	for _, lanes := range []int{1, 2, 3, 7, 16} {
		p := affinity.NewPicker(lanes, 8)
		for i := 0; i < 1000; i++ {
			if v := p.Pick(); int(v) >= lanes {
				t.Fatalf("lanes=%d: pick %d out of range", lanes, v)
			}
		}
	}
}

// TestStickyWindow: a single goroutine's picks are sticky — no run on one
// lane ever exceeds the rebalance budget, and the picker does rotate
// across lanes. (A GC can end a window early by dropping the pooled
// token; that only shortens runs, so the assertions stay stable.)
func TestStickyWindow(t *testing.T) {
	const lanes, every = 4, 16
	p := affinity.NewPicker(lanes, every)
	var transitions int
	prev := p.Pick()
	run := 1
	for i := 1; i < lanes*every; i++ {
		v := p.Pick()
		if v != prev {
			if run > every {
				t.Fatalf("window of %d picks on lane %d exceeds budget %d", run, prev, every)
			}
			transitions++
			prev, run = v, 1
			continue
		}
		run++
	}
	if transitions == 0 {
		t.Fatal("picker never rebalanced across lanes")
	}
}

// TestZeroAndDefaultParams: degenerate constructor inputs fall back to
// sane defaults instead of dividing by zero.
func TestZeroAndDefaultParams(t *testing.T) {
	p := affinity.NewPicker(0, 0)
	if p.Lanes() != 1 {
		t.Fatalf("lanes = %d, want 1", p.Lanes())
	}
	for i := 0; i < 100; i++ {
		if v := p.Pick(); v != 0 {
			t.Fatalf("single-lane pick = %d", v)
		}
	}
}

// TestConcurrentPicksCoverLanes: under concurrency every lane is
// eventually assigned (the round-robin rebalance spreads load), and no
// pick escapes the range. Run with -race in CI.
func TestConcurrentPicksCoverLanes(t *testing.T) {
	const lanes = 4
	p := affinity.NewPicker(lanes, 8)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen [lanes]int
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := [lanes]int{}
			for i := 0; i < 2000; i++ {
				local[p.Pick()]++
			}
			mu.Lock()
			for i, n := range local {
				seen[i] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for lane, n := range seen {
		if n == 0 {
			t.Fatalf("lane %d never picked: %v", lane, seen)
		}
	}
}
