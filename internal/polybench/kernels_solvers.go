package polybench

import (
	"math"

	"acctee/internal/wasm"
)

// This file implements the linear-solver PolyBench kernels: cholesky,
// durbin, gramschmidt, lu, ludcmp, trisolv.

// spd2 initialises a symmetric positive-definite-ish matrix the PolyBench
// way: strong diagonal. A[i][j] = (i==j) ? n+2 : ((i+j)%n)/n + small.
func (k *kb) spd2(base int32, N int32, i, j uint32) {
	n := int(N)
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			// off-diagonal value
			k.fstore(base, k.idx2(k.get(i), N, k.get(j)),
				k.div(k.i2f(k.imod(k.iadd(k.get(i), k.get(j)), N)), k.cf(float64(2*n))))
		})
		// dominant diagonal
		k.fstore(base, k.idx2(k.get(i), N, k.get(i)), k.cf(float64(n)+2))
	})
}

func nativeSPD2(a []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i+j)%n) / float64(2*n)
		}
		a[i*n+i] = float64(n) + 2
	}
}

// sqrtE wraps f64.sqrt as an expr combinator.
func (k *kb) sqrtE(e expr) expr {
	return func() {
		e()
		k.f.Op(wasm.OpF64Sqrt)
	}
}

// ---------------------------------------------------------------------------
// cholesky: in-place Cholesky factorisation

func buildCholesky(n int) (*wasm.Module, error) {
	k, _ := newKB("cholesky")
	N := int32(n)
	A := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.spd2(A, N, i, j)
	k.loop(i, k.ci(0), k.ci(N), func() {
		// for j < i: A[i][j] = (A[i][j] - sum_{l<j} A[i][l]*A[j][l]) / A[j][j]
		k.loop(j, k.ci(0), k.get(i), func() {
			k.loop(l, k.ci(0), k.get(j), func() {
				k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
							k.fload(A, k.idx2(k.get(j), N, k.get(l))))))
			})
			k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
				k.div(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
					k.fload(A, k.idx2(k.get(j), N, k.get(j)))))
		})
		// diagonal
		k.loop(l, k.ci(0), k.get(i), func() {
			k.fstore(A, k.idx2(k.get(i), N, k.get(i)),
				k.sub(k.fload(A, k.idx2(k.get(i), N, k.get(i))),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
						k.fload(A, k.idx2(k.get(i), N, k.get(l))))))
		})
		k.fstore(A, k.idx2(k.get(i), N, k.get(i)),
			k.sqrtE(k.fload(A, k.idx2(k.get(i), N, k.get(i)))))
	})
	k.checksum([]int32{A}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeCholesky(n int) float64 {
	A := make([]float64, n*n)
	nativeSPD2(A, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			for l := 0; l < j; l++ {
				A[i*n+j] = A[i*n+j] - A[i*n+l]*A[j*n+l]
			}
			A[i*n+j] = A[i*n+j] / A[j*n+j]
		}
		for l := 0; l < i; l++ {
			A[i*n+i] = A[i*n+i] - A[i*n+l]*A[i*n+l]
		}
		A[i*n+i] = math.Sqrt(A[i*n+i])
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// lu: in-place LU decomposition

func buildLu(n int) (*wasm.Module, error) {
	k, _ := newKB("lu")
	N := int32(n)
	A := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.spd2(A, N, i, j)
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.get(i), func() {
			k.loop(l, k.ci(0), k.get(j), func() {
				k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
							k.fload(A, k.idx2(k.get(l), N, k.get(j))))))
			})
			k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
				k.div(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
					k.fload(A, k.idx2(k.get(j), N, k.get(j)))))
		})
		k.f.ForI32(j, exprInstrs(k, k.get(i)), exprInstrs(k, k.ci(N)), 1, func() {
			k.loop(l, k.ci(0), k.get(i), func() {
				k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
							k.fload(A, k.idx2(k.get(l), N, k.get(j))))))
			})
		})
	})
	k.checksum([]int32{A}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeLu(n int) float64 {
	A := make([]float64, n*n)
	nativeSPD2(A, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			for l := 0; l < j; l++ {
				A[i*n+j] = A[i*n+j] - A[i*n+l]*A[l*n+j]
			}
			A[i*n+j] = A[i*n+j] / A[j*n+j]
		}
		for j := i; j < n; j++ {
			for l := 0; l < i; l++ {
				A[i*n+j] = A[i*n+j] - A[i*n+l]*A[l*n+j]
			}
		}
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// ludcmp: LU decomposition + forward/back substitution

func buildLudcmp(n int) (*wasm.Module, error) {
	k, _ := newKB("ludcmp")
	N := int32(n)
	A := k.alloc(n * n)
	b := k.alloc(n)
	x := k.alloc(n)
	y := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	ii := k.local() // ascending surrogate for the descending loop
	acc := k.flocal()
	w := k.flocal()
	k.spd2(A, N, i, j)
	k.init1(b, N, i, 2, 1, N, int(N))
	// LU decomposition (same as lu, with scalar w as in PolyBench)
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.get(i), func() {
			k.fsetLocal(w, k.fload(A, k.idx2(k.get(i), N, k.get(j))))
			k.loop(l, k.ci(0), k.get(j), func() {
				k.fsetLocal(w, k.sub(k.fget(w),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
						k.fload(A, k.idx2(k.get(l), N, k.get(j))))))
			})
			k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
				k.div(k.fget(w), k.fload(A, k.idx2(k.get(j), N, k.get(j)))))
		})
		k.f.ForI32(j, exprInstrs(k, k.get(i)), exprInstrs(k, k.ci(N)), 1, func() {
			k.fsetLocal(w, k.fload(A, k.idx2(k.get(i), N, k.get(j))))
			k.loop(l, k.ci(0), k.get(i), func() {
				k.fsetLocal(w, k.sub(k.fget(w),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
						k.fload(A, k.idx2(k.get(l), N, k.get(j))))))
			})
			k.fstore(A, k.idx2(k.get(i), N, k.get(j)), k.fget(w))
		})
	})
	// forward substitution: y
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fsetLocal(w, k.fload(b, k.get(i)))
		k.loop(j, k.ci(0), k.get(i), func() {
			k.fsetLocal(w, k.sub(k.fget(w),
				k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(y, k.get(j)))))
		})
		k.fstore(y, k.get(i), k.fget(w))
	})
	// back substitution: x (descending i via ascending surrogate ii)
	k.loop(ii, k.ci(0), k.ci(N), func() {
		// i = N-1-ii
		k.f.I32Const(N - 1).LocalGet(ii).Op(wasm.OpI32Sub).LocalSet(i)
		k.fsetLocal(w, k.fload(y, k.get(i)))
		k.f.ForI32(j, exprInstrs(k, k.iadd(k.get(i), k.ci(1))), exprInstrs(k, k.ci(N)), 1, func() {
			k.fsetLocal(w, k.sub(k.fget(w),
				k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(x, k.get(j)))))
		})
		k.fstore(x, k.get(i), k.div(k.fget(w), k.fload(A, k.idx2(k.get(i), N, k.get(i)))))
	})
	k.checksum([]int32{x}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeLudcmp(n int) float64 {
	A := make([]float64, n*n)
	b := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	nativeSPD2(A, n)
	nativeInit1(b, n, 2, 1, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			w := A[i*n+j]
			for l := 0; l < j; l++ {
				w = w - A[i*n+l]*A[l*n+j]
			}
			A[i*n+j] = w / A[j*n+j]
		}
		for j := i; j < n; j++ {
			w := A[i*n+j]
			for l := 0; l < i; l++ {
				w = w - A[i*n+l]*A[l*n+j]
			}
			A[i*n+j] = w
		}
	}
	for i := 0; i < n; i++ {
		w := b[i]
		for j := 0; j < i; j++ {
			w = w - A[i*n+j]*y[j]
		}
		y[i] = w
	}
	for ii := 0; ii < n; ii++ {
		i := n - 1 - ii
		w := y[i]
		for j := i + 1; j < n; j++ {
			w = w - A[i*n+j]*x[j]
		}
		x[i] = w / A[i*n+i]
	}
	return sum(x)
}

// ---------------------------------------------------------------------------
// trisolv: forward substitution L x = b

func buildTrisolv(n int) (*wasm.Module, error) {
	k, _ := newKB("trisolv")
	N := int32(n)
	L := k.alloc(n * n)
	x := k.alloc(n)
	b := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j := k.local(), k.local()
	acc := k.flocal()
	k.spd2(L, N, i, j)
	k.init1(b, N, i, 3, 1, N, int(N))
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(x, k.get(i), k.fload(b, k.get(i)))
		k.loop(j, k.ci(0), k.get(i), func() {
			k.fstore(x, k.get(i),
				k.sub(k.fload(x, k.get(i)),
					k.mul(k.fload(L, k.idx2(k.get(i), N, k.get(j))), k.fload(x, k.get(j)))))
		})
		k.fstore(x, k.get(i),
			k.div(k.fload(x, k.get(i)), k.fload(L, k.idx2(k.get(i), N, k.get(i)))))
	})
	k.checksum([]int32{x}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeTrisolv(n int) float64 {
	L := make([]float64, n*n)
	x := make([]float64, n)
	b := make([]float64, n)
	nativeSPD2(L, n)
	nativeInit1(b, n, 3, 1, n, n)
	for i := 0; i < n; i++ {
		x[i] = b[i]
		for j := 0; j < i; j++ {
			x[i] = x[i] - L[i*n+j]*x[j]
		}
		x[i] = x[i] / L[i*n+i]
	}
	return sum(x)
}

// ---------------------------------------------------------------------------
// durbin: Levinson-Durbin recursion

func buildDurbin(n int) (*wasm.Module, error) {
	k, _ := newKB("durbin")
	N := int32(n)
	r := k.alloc(n)
	y := k.alloc(n)
	z := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	kk, i := k.local(), k.local()
	acc := k.flocal()
	alpha := k.flocal()
	beta := k.flocal()
	sumf := k.flocal()
	k.init1(r, N, i, 1, 1, N+1, int(N)+1)
	// y[0] = -r[0]; beta = 1; alpha = -r[0]
	k.fstore(y, k.ci(0), k.sub(k.cf(0), k.fload(r, k.ci(0))))
	k.fsetLocal(beta, k.cf(1))
	k.fsetLocal(alpha, k.sub(k.cf(0), k.fload(r, k.ci(0))))
	k.f.ForI32(kk, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N)), 1, func() {
		// beta = (1 - alpha*alpha) * beta
		k.fsetLocal(beta, k.mul(k.sub(k.cf(1), k.mul(k.fget(alpha), k.fget(alpha))), k.fget(beta)))
		// sum = 0; for i<k: sum += r[k-i-1]*y[i]
		k.fsetLocal(sumf, k.cf(0))
		k.loop(i, k.ci(0), k.get(kk), func() {
			// r index = k-i-1
			k.fsetLocal(sumf, k.add(k.fget(sumf),
				k.mul(k.fload(r, func() {
					k.f.LocalGet(kk).LocalGet(i).Op(wasm.OpI32Sub).I32Const(1).Op(wasm.OpI32Sub)
				}), k.fload(y, k.get(i)))))
		})
		// alpha = -(r[k] + sum)/beta
		k.fsetLocal(alpha, k.div(k.sub(k.cf(0), k.add(k.fload(r, k.get(kk)), k.fget(sumf))), k.fget(beta)))
		// for i<k: z[i] = y[i] + alpha*y[k-i-1]
		k.loop(i, k.ci(0), k.get(kk), func() {
			k.fstore(z, k.get(i),
				k.add(k.fload(y, k.get(i)),
					k.mul(k.fget(alpha), k.fload(y, func() {
						k.f.LocalGet(kk).LocalGet(i).Op(wasm.OpI32Sub).I32Const(1).Op(wasm.OpI32Sub)
					}))))
		})
		k.loop(i, k.ci(0), k.get(kk), func() {
			k.fstore(y, k.get(i), k.fload(z, k.get(i)))
		})
		k.fstore(y, k.get(kk), k.fget(alpha))
	})
	k.checksum([]int32{y}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeDurbin(n int) float64 {
	r := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	nativeInit1(r, n, 1, 1, n+1, n+1)
	y[0] = 0 - r[0]
	beta := 1.0
	alpha := 0 - r[0]
	for k := 1; k < n; k++ {
		beta = (1 - alpha*alpha) * beta
		sumf := 0.0
		for i := 0; i < k; i++ {
			sumf = sumf + r[k-i-1]*y[i]
		}
		alpha = (0 - (r[k] + sumf)) / beta
		for i := 0; i < k; i++ {
			z[i] = y[i] + alpha*y[k-i-1]
		}
		for i := 0; i < k; i++ {
			y[i] = z[i]
		}
		y[k] = alpha
	}
	return sum(y)
}

// ---------------------------------------------------------------------------
// gramschmidt: QR decomposition by modified Gram-Schmidt

func buildGramschmidt(n int) (*wasm.Module, error) {
	k, _ := newKB("gramschmidt")
	N := int32(n)
	A := k.alloc(n * n)
	R := k.alloc(n * n)
	Q := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	nrm := k.flocal()
	// init: A[i][j] = (((i*j+1)%n)/n)*100 + 10 (well-conditioned columns)
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.mul(k.div(k.i2f(k.imod(k.iadd(k.imul(k.get(i), k.get(j)), k.ci(1)), N)), k.cf(float64(n))), k.cf(100)), k.cf(10)))
		})
	})
	k.loop(l, k.ci(0), k.ci(N), func() {
		// nrm = sum_i A[i][l]^2
		k.fsetLocal(nrm, k.cf(0))
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.fsetLocal(nrm, k.add(k.fget(nrm),
				k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
					k.fload(A, k.idx2(k.get(i), N, k.get(l))))))
		})
		k.fstore(R, k.idx2(k.get(l), N, k.get(l)), k.sqrtE(k.fget(nrm)))
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.fstore(Q, k.idx2(k.get(i), N, k.get(l)),
				k.div(k.fload(A, k.idx2(k.get(i), N, k.get(l))),
					k.fload(R, k.idx2(k.get(l), N, k.get(l)))))
		})
		k.f.ForI32(j, exprInstrs(k, k.iadd(k.get(l), k.ci(1))), exprInstrs(k, k.ci(N)), 1, func() {
			k.fstore(R, k.idx2(k.get(l), N, k.get(j)), k.cf(0))
			k.loop(i, k.ci(0), k.ci(N), func() {
				k.fstore(R, k.idx2(k.get(l), N, k.get(j)),
					k.add(k.fload(R, k.idx2(k.get(l), N, k.get(j))),
						k.mul(k.fload(Q, k.idx2(k.get(i), N, k.get(l))),
							k.fload(A, k.idx2(k.get(i), N, k.get(j))))))
			})
			k.loop(i, k.ci(0), k.ci(N), func() {
				k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(Q, k.idx2(k.get(i), N, k.get(l))),
							k.fload(R, k.idx2(k.get(l), N, k.get(j))))))
			})
		})
	})
	k.checksum([]int32{R, Q}, []int{n * n, n * n}, acc, i)
	return k.finishModule()
}

func nativeGramschmidt(n int) float64 {
	A := make([]float64, n*n)
	R := make([]float64, n*n)
	Q := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			A[i*n+j] = (float64((i*j+1)%n)/float64(n))*100 + 10
		}
	}
	for l := 0; l < n; l++ {
		nrm := 0.0
		for i := 0; i < n; i++ {
			nrm = nrm + A[i*n+l]*A[i*n+l]
		}
		R[l*n+l] = math.Sqrt(nrm)
		for i := 0; i < n; i++ {
			Q[i*n+l] = A[i*n+l] / R[l*n+l]
		}
		for j := l + 1; j < n; j++ {
			R[l*n+j] = 0
			for i := 0; i < n; i++ {
				R[l*n+j] = R[l*n+j] + Q[i*n+l]*A[i*n+j]
			}
			for i := 0; i < n; i++ {
				A[i*n+j] = A[i*n+j] - Q[i*n+l]*R[l*n+j]
			}
		}
	}
	return sum(R, Q)
}

func registerSolvers() {
	register(Kernel{Name: "cholesky", Build: buildCholesky, Native: nativeCholesky, DefaultN: 28})
	register(Kernel{Name: "lu", Build: buildLu, Native: nativeLu, DefaultN: 26})
	register(Kernel{Name: "ludcmp", Build: buildLudcmp, Native: nativeLudcmp, DefaultN: 26})
	register(Kernel{Name: "trisolv", Build: buildTrisolv, Native: nativeTrisolv, DefaultN: 60})
	register(Kernel{Name: "durbin", Build: buildDurbin, Native: nativeDurbin, DefaultN: 60})
	register(Kernel{Name: "gramschmidt", Build: buildGramschmidt, Native: nativeGramschmidt, DefaultN: 24})
}
