// Package polybench implements all 29 kernels of the PolyBench/C 4.2.1
// benchmark suite (paper §5.1, Fig. 6) twice: as WebAssembly modules built
// with the wasm builder (the workloads executed inside the two-way sandbox)
// and as native Go reference implementations (the paper's "native" baseline
// and the correctness oracle — both versions perform identical IEEE-754
// operation sequences, so their checksums must match bit-for-bit).
//
// Every kernel initialises its own inputs deterministically (PolyBench
// style), runs the computation, and returns a checksum of the output
// arrays as f64.
package polybench

import (
	"fmt"
	"sort"

	"acctee/internal/wasm"
)

// Kernel is one PolyBench program.
type Kernel struct {
	// Name is the PolyBench kernel name (e.g. "gemm").
	Name string
	// Build constructs the Wasm module for problem size n. The module
	// exports "run" () -> f64 returning the output checksum.
	Build func(n int) (*wasm.Module, error)
	// Native runs the reference implementation and returns the checksum.
	Native func(n int) float64
	// DefaultN is the problem size used by the evaluation harness, chosen
	// so the whole suite completes quickly under interpretation.
	DefaultN int
	// MemoryHeavy marks kernels whose working set is scaled beyond the
	// (scaled-down) EPC in the Fig. 6 experiment.
	MemoryHeavy bool
}

var registry = map[string]Kernel{}

// The registry is populated once at package initialisation — the accepted
// use of init for pluggable registries.
func init() {
	registerBLAS()
	registerSolvers()
	registerStencils()
	registerMisc()
}

func register(k Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("polybench: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
}

// Names returns all kernel names in PolyBench's alphabetical order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a kernel by name.
func Get(name string) (Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return Kernel{}, fmt.Errorf("polybench: unknown kernel %q", name)
	}
	return k, nil
}

// ---------------------------------------------------------------------------
// builder DSL
//
// Kernels are written against kb, a thin layer over the wasm builder that
// makes loop nests and flat f64 array accesses read like the C originals.

type kb struct {
	f *wasm.FuncBuilder
	b *wasm.ModuleBuilder
	// next free byte in linear memory for array allocation
	next int32
}

// expr emits instructions pushing exactly one value.
type expr func()

func newKB(name string) (*kb, *wasm.ModuleBuilder) {
	b := wasm.NewModule(name)
	return &kb{b: b, next: 64}, b
}

// begin opens the exported "run" function.
func (k *kb) begin() {
	k.f = k.b.Func("run", nil, []wasm.ValueType{wasm.F64})
}

// finishModule closes run (leaving the checksum on the stack), sizes memory
// and builds the module.
func (k *kb) finishModule() (*wasm.Module, error) {
	idx := k.f.End()
	k.b.ExportFunc("run", idx)
	return k.b.Build()
}

// alloc reserves n f64 elements and returns the base byte offset.
func (k *kb) alloc(n int) int32 {
	base := k.next
	k.next += int32(n) * 8
	return base
}

// pages returns the number of 64 KiB pages needed for all allocations.
func (k *kb) pages() uint32 {
	return uint32((k.next + wasm.PageSize - 1) / wasm.PageSize)
}

// local declares a fresh i32 local.
func (k *kb) local() uint32 { return k.f.Local(wasm.I32) }

// flocal declares a fresh f64 local.
func (k *kb) flocal() uint32 { return k.f.Local(wasm.F64) }

// get pushes an i32 local.
func (k *kb) get(v uint32) expr { return func() { k.f.LocalGet(v) } }

// fget pushes an f64 local.
func (k *kb) fget(v uint32) expr { return func() { k.f.LocalGet(v) } }

// ci pushes an i32 constant.
func (k *kb) ci(v int32) expr { return func() { k.f.I32Const(v) } }

// cf pushes an f64 constant.
func (k *kb) cf(v float64) expr { return func() { k.f.F64ConstV(v) } }

// loop emits `for v = lo; v < hi; v++ { body }`. lo and hi must be
// side-effect-free (they are re-evaluated each iteration by the canonical
// loop shape the loop-based optimisation matches).
func (k *kb) loop(v uint32, lo, hi expr, body func()) {
	k.f.ForI32(v, exprInstrs(k, lo), exprInstrs(k, hi), 1, body)
}

// exprInstrs captures the instruction sequence an expr emits so it can be
// passed to ForI32 (which re-emits loop bounds inside the canonical
// counted-loop shape).
func exprInstrs(k *kb, e expr) []wasm.Instr {
	mark := k.f.BodyLen()
	e()
	return k.f.TakeFrom(mark)
}

// idx2 pushes the flat element index i*cols + j.
func (k *kb) idx2(i expr, cols int32, j expr) expr {
	return func() {
		i()
		k.f.I32Const(cols).Op(wasm.OpI32Mul)
		j()
		k.f.Op(wasm.OpI32Add)
	}
}

// idx3 pushes ((i*d2)+j)*d3 + l for 3-D arrays.
func (k *kb) idx3(i expr, d2 int32, j expr, d3 int32, l expr) expr {
	return func() {
		i()
		k.f.I32Const(d2).Op(wasm.OpI32Mul)
		j()
		k.f.Op(wasm.OpI32Add)
		k.f.I32Const(d3).Op(wasm.OpI32Mul)
		l()
		k.f.Op(wasm.OpI32Add)
	}
}

// fload pushes arr[idx] (f64) for the array at byte offset base.
func (k *kb) fload(base int32, idx expr) expr {
	return func() {
		idx()
		k.f.I32Const(8).Op(wasm.OpI32Mul)
		k.f.Load(wasm.OpF64Load, uint32(base))
	}
}

// fstore emits arr[idx] = val.
func (k *kb) fstore(base int32, idx expr, val expr) {
	idx()
	k.f.I32Const(8).Op(wasm.OpI32Mul)
	val()
	k.f.Store(wasm.OpF64Store, uint32(base))
}

// binf applies an f64 binary op to two exprs.
func (k *kb) binf(op wasm.Opcode, a, b expr) expr {
	return func() {
		a()
		b()
		k.f.Op(op)
	}
}

func (k *kb) add(a, b expr) expr { return k.binf(wasm.OpF64Add, a, b) }
func (k *kb) sub(a, b expr) expr { return k.binf(wasm.OpF64Sub, a, b) }
func (k *kb) mul(a, b expr) expr { return k.binf(wasm.OpF64Mul, a, b) }
func (k *kb) div(a, b expr) expr { return k.binf(wasm.OpF64Div, a, b) }

// fsetLocal stores an expr into an f64 local.
func (k *kb) fsetLocal(v uint32, e expr) {
	e()
	k.f.LocalSet(v)
}

// i2f converts an i32 expr to f64.
func (k *kb) i2f(e expr) expr {
	return func() {
		e()
		k.f.Op(wasm.OpF64ConvertI32S)
	}
}

// imod pushes a % m for i32 exprs.
func (k *kb) imod(a expr, m int32) expr {
	return func() {
		a()
		k.f.I32Const(m).Op(wasm.OpI32RemS)
	}
}

// iadd/imul build i32 arithmetic exprs.
func (k *kb) iadd(a, b expr) expr {
	return func() { a(); b(); k.f.Op(wasm.OpI32Add) }
}

func (k *kb) imul(a, b expr) expr {
	return func() { a(); b(); k.f.Op(wasm.OpI32Mul) }
}

// checksum sums the n elements of the array at base into acc and pushes it.
func (k *kb) checksum(bases []int32, counts []int, acc uint32, i uint32) {
	k.f.F64ConstV(0).LocalSet(acc)
	for a, base := range bases {
		k.loop(i, k.ci(0), k.ci(int32(counts[a])), func() {
			k.fsetLocal(acc, k.add(k.fget(acc), k.fload(base, k.get(i))))
		})
	}
	k.f.LocalGet(acc)
}
