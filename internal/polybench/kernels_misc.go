package polybench

import (
	"math"

	"acctee/internal/wasm"
)

// This file implements the data-mining and remaining PolyBench kernels:
// correlation, covariance, deriche, nussinov.

// ---------------------------------------------------------------------------
// covariance

func buildCovariance(n int) (*wasm.Module, error) {
	k, _ := newKB("covariance")
	N := int32(n)
	data := k.alloc(n * n)
	mean := k.alloc(n)
	cov := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(data, N, N, i, j, 1, N, int(N))
	fn := float64(n)
	k.loop(j, k.ci(0), k.ci(N), func() {
		k.fstore(mean, k.get(j), k.cf(0))
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.fstore(mean, k.get(j),
				k.add(k.fload(mean, k.get(j)), k.fload(data, k.idx2(k.get(i), N, k.get(j)))))
		})
		k.fstore(mean, k.get(j), k.div(k.fload(mean, k.get(j)), k.cf(fn)))
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(data, k.idx2(k.get(i), N, k.get(j)),
				k.sub(k.fload(data, k.idx2(k.get(i), N, k.get(j))), k.fload(mean, k.get(j))))
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.f.ForI32(j, exprInstrs(k, k.get(i)), exprInstrs(k, k.ci(N)), 1, func() {
			k.fstore(cov, k.idx2(k.get(i), N, k.get(j)), k.cf(0))
			k.loop(l, k.ci(0), k.ci(N), func() {
				k.fstore(cov, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(cov, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(data, k.idx2(k.get(l), N, k.get(i))),
							k.fload(data, k.idx2(k.get(l), N, k.get(j))))))
			})
			k.fstore(cov, k.idx2(k.get(i), N, k.get(j)),
				k.div(k.fload(cov, k.idx2(k.get(i), N, k.get(j))), k.cf(fn-1)))
			k.fstore(cov, k.idx2(k.get(j), N, k.get(i)),
				k.fload(cov, k.idx2(k.get(i), N, k.get(j))))
		})
	})
	k.checksum([]int32{cov}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeCovariance(n int) float64 {
	data := make([]float64, n*n)
	mean := make([]float64, n)
	cov := make([]float64, n*n)
	nativeInit2(data, n, n, 1, n, n)
	fn := float64(n)
	for j := 0; j < n; j++ {
		mean[j] = 0
		for i := 0; i < n; i++ {
			mean[j] = mean[j] + data[i*n+j]
		}
		mean[j] = mean[j] / fn
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = data[i*n+j] - mean[j]
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			cov[i*n+j] = 0
			for l := 0; l < n; l++ {
				cov[i*n+j] = cov[i*n+j] + data[l*n+i]*data[l*n+j]
			}
			cov[i*n+j] = cov[i*n+j] / (fn - 1)
			cov[j*n+i] = cov[i*n+j]
		}
	}
	return sum(cov)
}

// ---------------------------------------------------------------------------
// correlation

func buildCorrelation(n int) (*wasm.Module, error) {
	k, _ := newKB("correlation")
	N := int32(n)
	data := k.alloc(n * n)
	mean := k.alloc(n)
	stddev := k.alloc(n)
	corr := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	s := k.flocal()
	k.init2(data, N, N, i, j, 1, N, int(N))
	fn := float64(n)
	const eps = 0.1
	k.loop(j, k.ci(0), k.ci(N), func() {
		k.fstore(mean, k.get(j), k.cf(0))
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.fstore(mean, k.get(j),
				k.add(k.fload(mean, k.get(j)), k.fload(data, k.idx2(k.get(i), N, k.get(j)))))
		})
		k.fstore(mean, k.get(j), k.div(k.fload(mean, k.get(j)), k.cf(fn)))
	})
	k.loop(j, k.ci(0), k.ci(N), func() {
		k.fstore(stddev, k.get(j), k.cf(0))
		k.loop(i, k.ci(0), k.ci(N), func() {
			d := k.sub(k.fload(data, k.idx2(k.get(i), N, k.get(j))), k.fload(mean, k.get(j)))
			d2 := k.sub(k.fload(data, k.idx2(k.get(i), N, k.get(j))), k.fload(mean, k.get(j)))
			k.fstore(stddev, k.get(j), k.add(k.fload(stddev, k.get(j)), k.mul(d, d2)))
		})
		k.fstore(stddev, k.get(j), k.div(k.fload(stddev, k.get(j)), k.cf(fn)))
		k.fstore(stddev, k.get(j), k.sqrtE(k.fload(stddev, k.get(j))))
		// stddev[j] = stddev[j] <= eps ? 1.0 : stddev[j]
		k.fsetLocal(s, k.fload(stddev, k.get(j)))
		k.f.LocalGet(s).F64ConstV(eps).Op(wasm.OpF64Le)
		k.f.If(wasm.BlockOf(wasm.F64), func() {
			k.f.F64ConstV(1)
		}, func() {
			k.f.LocalGet(s)
		})
		k.f.LocalSet(s)
		k.fstore(stddev, k.get(j), k.fget(s))
	})
	// normalise
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(data, k.idx2(k.get(i), N, k.get(j)),
				k.sub(k.fload(data, k.idx2(k.get(i), N, k.get(j))), k.fload(mean, k.get(j))))
			k.fstore(data, k.idx2(k.get(i), N, k.get(j)),
				k.div(k.fload(data, k.idx2(k.get(i), N, k.get(j))),
					k.mul(k.sqrtE(k.cf(fn)), k.fload(stddev, k.get(j)))))
		})
	})
	// correlation matrix
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(corr, k.idx2(k.get(i), N, k.get(i)), k.cf(1))
		k.f.ForI32(j, exprInstrs(k, k.iadd(k.get(i), k.ci(1))), exprInstrs(k, k.ci(N)), 1, func() {
			k.fstore(corr, k.idx2(k.get(i), N, k.get(j)), k.cf(0))
			k.loop(l, k.ci(0), k.ci(N), func() {
				k.fstore(corr, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(corr, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(data, k.idx2(k.get(l), N, k.get(i))),
							k.fload(data, k.idx2(k.get(l), N, k.get(j))))))
			})
			k.fstore(corr, k.idx2(k.get(j), N, k.get(i)),
				k.fload(corr, k.idx2(k.get(i), N, k.get(j))))
		})
	})
	k.checksum([]int32{corr}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeCorrelation(n int) float64 {
	data := make([]float64, n*n)
	mean := make([]float64, n)
	stddev := make([]float64, n)
	corr := make([]float64, n*n)
	nativeInit2(data, n, n, 1, n, n)
	fn := float64(n)
	const eps = 0.1
	for j := 0; j < n; j++ {
		mean[j] = 0
		for i := 0; i < n; i++ {
			mean[j] = mean[j] + data[i*n+j]
		}
		mean[j] = mean[j] / fn
	}
	for j := 0; j < n; j++ {
		stddev[j] = 0
		for i := 0; i < n; i++ {
			d := data[i*n+j] - mean[j]
			d2 := data[i*n+j] - mean[j]
			stddev[j] = stddev[j] + d*d2
		}
		stddev[j] = stddev[j] / fn
		stddev[j] = math.Sqrt(stddev[j])
		if stddev[j] <= eps {
			stddev[j] = 1.0
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = data[i*n+j] - mean[j]
			data[i*n+j] = data[i*n+j] / (math.Sqrt(fn) * stddev[j])
		}
	}
	for i := 0; i < n; i++ {
		corr[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			corr[i*n+j] = 0
			for l := 0; l < n; l++ {
				corr[i*n+j] = corr[i*n+j] + data[l*n+i]*data[l*n+j]
			}
			corr[j*n+i] = corr[i*n+j]
		}
	}
	return sum(corr)
}

// ---------------------------------------------------------------------------
// deriche: recursive edge-detection filter (horizontal + vertical passes).
// The exponential filter coefficients are precomputed host-side constants —
// identical in both versions — because Wasm MVP has no exp instruction.

func dericheCoeffs() (a1, a2, a3, a4, b1, b2, c1 float64) {
	alpha := 0.25
	k := (1 - math.Exp(-alpha)) * (1 - math.Exp(-alpha)) /
		(1 + 2*alpha*math.Exp(-alpha) - math.Exp(2*alpha))
	a1 = k
	a2 = k * math.Exp(-alpha) * (alpha - 1)
	a3 = k * math.Exp(-alpha) * (alpha + 1)
	a4 = -k * math.Exp(-2*alpha)
	b1 = math.Pow(2, -alpha)
	b2 = -math.Exp(-2 * alpha)
	c1 = 1
	return
}

func buildDeriche(n int) (*wasm.Module, error) {
	k, _ := newKB("deriche")
	N := int32(n)
	img := k.alloc(n * n)
	y1 := k.alloc(n * n)
	y2 := k.alloc(n * n)
	out := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, jj := k.local(), k.local(), k.local()
	acc := k.flocal()
	ym1, ym2, xm1 := k.flocal(), k.flocal(), k.flocal()
	a1, a2, a3, a4, b1, b2, c1 := dericheCoeffs()
	k.init2(img, N, N, i, j, 1, 313, 313)
	// horizontal forward pass
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fsetLocal(ym1, k.cf(0))
		k.fsetLocal(ym2, k.cf(0))
		k.fsetLocal(xm1, k.cf(0))
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(y1, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.add(
					k.mul(k.cf(a1), k.fload(img, k.idx2(k.get(i), N, k.get(j)))),
					k.mul(k.cf(a2), k.fget(xm1))),
					k.add(k.mul(k.cf(b1), k.fget(ym1)), k.mul(k.cf(b2), k.fget(ym2)))))
			k.fsetLocal(xm1, k.fload(img, k.idx2(k.get(i), N, k.get(j))))
			k.fsetLocal(ym2, k.fget(ym1))
			k.fsetLocal(ym1, k.fload(y1, k.idx2(k.get(i), N, k.get(j))))
		})
	})
	// horizontal backward pass
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fsetLocal(ym1, k.cf(0))
		k.fsetLocal(ym2, k.cf(0))
		k.fsetLocal(xm1, k.cf(0))
		k.loop(jj, k.ci(0), k.ci(N), func() {
			k.f.I32Const(N - 1).LocalGet(jj).Op(wasm.OpI32Sub).LocalSet(j)
			k.fstore(y2, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.add(
					k.mul(k.cf(a3), k.fget(xm1)),
					k.mul(k.cf(a4), k.fget(xm1))),
					k.add(k.mul(k.cf(b1), k.fget(ym1)), k.mul(k.cf(b2), k.fget(ym2)))))
			k.fsetLocal(xm1, k.fload(img, k.idx2(k.get(i), N, k.get(j))))
			k.fsetLocal(ym2, k.fget(ym1))
			k.fsetLocal(ym1, k.fload(y2, k.idx2(k.get(i), N, k.get(j))))
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(out, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.cf(c1), k.add(k.fload(y1, k.idx2(k.get(i), N, k.get(j))),
					k.fload(y2, k.idx2(k.get(i), N, k.get(j))))))
		})
	})
	// vertical passes over out -> y1/y2 -> img
	k.loop(j, k.ci(0), k.ci(N), func() {
		k.fsetLocal(ym1, k.cf(0))
		k.fsetLocal(ym2, k.cf(0))
		k.fsetLocal(xm1, k.cf(0))
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.fstore(y1, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.add(
					k.mul(k.cf(a1), k.fload(out, k.idx2(k.get(i), N, k.get(j)))),
					k.mul(k.cf(a2), k.fget(xm1))),
					k.add(k.mul(k.cf(b1), k.fget(ym1)), k.mul(k.cf(b2), k.fget(ym2)))))
			k.fsetLocal(xm1, k.fload(out, k.idx2(k.get(i), N, k.get(j))))
			k.fsetLocal(ym2, k.fget(ym1))
			k.fsetLocal(ym1, k.fload(y1, k.idx2(k.get(i), N, k.get(j))))
		})
	})
	k.loop(j, k.ci(0), k.ci(N), func() {
		k.fsetLocal(ym1, k.cf(0))
		k.fsetLocal(ym2, k.cf(0))
		k.fsetLocal(xm1, k.cf(0))
		k.loop(jj, k.ci(0), k.ci(N), func() {
			k.f.I32Const(N - 1).LocalGet(jj).Op(wasm.OpI32Sub).LocalSet(i)
			k.fstore(y2, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.add(
					k.mul(k.cf(a3), k.fget(xm1)),
					k.mul(k.cf(a4), k.fget(xm1))),
					k.add(k.mul(k.cf(b1), k.fget(ym1)), k.mul(k.cf(b2), k.fget(ym2)))))
			k.fsetLocal(xm1, k.fload(out, k.idx2(k.get(i), N, k.get(j))))
			k.fsetLocal(ym2, k.fget(ym1))
			k.fsetLocal(ym1, k.fload(y2, k.idx2(k.get(i), N, k.get(j))))
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(img, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.cf(c1), k.add(k.fload(y1, k.idx2(k.get(i), N, k.get(j))),
					k.fload(y2, k.idx2(k.get(i), N, k.get(j))))))
		})
	})
	k.checksum([]int32{img}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeDeriche(n int) float64 {
	img := make([]float64, n*n)
	y1 := make([]float64, n*n)
	y2 := make([]float64, n*n)
	out := make([]float64, n*n)
	a1, a2, a3, a4, b1, b2, c1 := dericheCoeffs()
	nativeInit2(img, n, n, 1, 313, 313)
	for i := 0; i < n; i++ {
		ym1, ym2, xm1 := 0.0, 0.0, 0.0
		for j := 0; j < n; j++ {
			y1[i*n+j] = a1*img[i*n+j] + a2*xm1 + (b1*ym1 + b2*ym2)
			xm1 = img[i*n+j]
			ym2 = ym1
			ym1 = y1[i*n+j]
		}
	}
	for i := 0; i < n; i++ {
		ym1, ym2, xm1 := 0.0, 0.0, 0.0
		for jj := 0; jj < n; jj++ {
			j := n - 1 - jj
			y2[i*n+j] = a3*xm1 + a4*xm1 + (b1*ym1 + b2*ym2)
			xm1 = img[i*n+j]
			ym2 = ym1
			ym1 = y2[i*n+j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i*n+j] = c1 * (y1[i*n+j] + y2[i*n+j])
		}
	}
	for j := 0; j < n; j++ {
		ym1, ym2, xm1 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			y1[i*n+j] = a1*out[i*n+j] + a2*xm1 + (b1*ym1 + b2*ym2)
			xm1 = out[i*n+j]
			ym2 = ym1
			ym1 = y1[i*n+j]
		}
	}
	for j := 0; j < n; j++ {
		ym1, ym2, xm1 := 0.0, 0.0, 0.0
		for jj := 0; jj < n; jj++ {
			i := n - 1 - jj
			y2[i*n+j] = a3*xm1 + a4*xm1 + (b1*ym1 + b2*ym2)
			xm1 = out[i*n+j]
			ym2 = ym1
			ym1 = y2[i*n+j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			img[i*n+j] = c1 * (y1[i*n+j] + y2[i*n+j])
		}
	}
	return sum(img)
}

// ---------------------------------------------------------------------------
// nussinov: RNA secondary-structure dynamic program. The DP table holds
// f64 scores; max via f64.max, base pairing via an equality test.

func buildNussinov(n int) (*wasm.Module, error) {
	k, _ := newKB("nussinov")
	N := int32(n)
	seq := k.alloc(n)
	tbl := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l, ii := k.local(), k.local(), k.local(), k.local()
	acc := k.flocal()
	// seq[i] = (i+1) % 4
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(seq, k.get(i), k.i2f(k.imod(k.iaddc(k.get(i), 1), 4)))
	})
	// table zeroed
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(tbl, k.idx2(k.get(i), N, k.get(j)), k.cf(0))
		})
	})
	maxInto := func(dst expr, cand expr, storeIdx expr) {
		// tbl[storeIdx] = max(dst, cand)
		storeIdx()
		k.f.I32Const(8).Op(wasm.OpI32Mul)
		dst()
		cand()
		k.f.Op(wasm.OpF64Max)
		k.f.Store(wasm.OpF64Store, uint32(tbl))
	}
	// for i = N-1 down to 0; for j = i+1 .. N
	k.loop(ii, k.ci(0), k.ci(N), func() {
		k.f.I32Const(N - 1).LocalGet(ii).Op(wasm.OpI32Sub).LocalSet(i)
		k.f.ForI32(j, exprInstrs(k, k.iadd(k.get(i), k.ci(1))), exprInstrs(k, k.ci(N)), 1, func() {
			cur := k.idx2(k.get(i), N, k.get(j))
			// option 1: tbl[i][j-1]
			maxInto(k.fload(tbl, cur), k.fload(tbl, k.idx2(k.get(i), N, k.isubc(k.get(j), 1))), cur)
			// option 2: tbl[i+1][j]
			maxInto(k.fload(tbl, cur), k.fload(tbl, k.idx2(k.iaddc(k.get(i), 1), N, k.get(j))), cur)
			// option 3: tbl[i+1][j-1] + match(i,j) when j-1 > i
			k.f.LocalGet(j).I32Const(1).Op(wasm.OpI32Sub).LocalGet(i).Op(wasm.OpI32GtS)
			k.f.If(wasm.BlockEmpty, func() {
				match := func() {
					// (seq[i]+seq[j] == 3) ? 1 : 0 as f64
					k.fload(seq, k.get(i))()
					k.fload(seq, k.get(j))()
					k.f.Op(wasm.OpF64Add).F64ConstV(3).Op(wasm.OpF64Eq)
					k.f.Op(wasm.OpF64ConvertI32S)
				}
				maxInto(k.fload(tbl, cur),
					k.add(k.fload(tbl, k.idx2(k.iaddc(k.get(i), 1), N, k.isubc(k.get(j), 1))), match),
					cur)
			}, nil)
			// option 4: split
			k.f.ForI32(l, exprInstrs(k, k.iadd(k.get(i), k.ci(1))), exprInstrs(k, k.get(j)), 1, func() {
				maxInto(k.fload(tbl, cur),
					k.add(k.fload(tbl, k.idx2(k.get(i), N, k.get(l))),
						k.fload(tbl, k.idx2(k.iaddc(k.get(l), 1), N, k.get(j)))),
					cur)
			})
		})
	})
	k.checksum([]int32{tbl}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeNussinov(n int) float64 {
	seq := make([]float64, n)
	tbl := make([]float64, n*n)
	for i := 0; i < n; i++ {
		seq[i] = float64((i + 1) % 4)
	}
	max := func(a, b float64) float64 { return math.Max(a, b) }
	for ii := 0; ii < n; ii++ {
		i := n - 1 - ii
		for j := i + 1; j < n; j++ {
			tbl[i*n+j] = max(tbl[i*n+j], tbl[i*n+j-1])
			tbl[i*n+j] = max(tbl[i*n+j], tbl[(i+1)*n+j])
			if j-1 > i {
				match := 0.0
				if seq[i]+seq[j] == 3 {
					match = 1
				}
				tbl[i*n+j] = max(tbl[i*n+j], tbl[(i+1)*n+j-1]+match)
			}
			for l := i + 1; l < j; l++ {
				tbl[i*n+j] = max(tbl[i*n+j], tbl[i*n+l]+tbl[(l+1)*n+j])
			}
		}
	}
	return sum(tbl)
}

func registerMisc() {
	register(Kernel{Name: "covariance", Build: buildCovariance, Native: nativeCovariance, DefaultN: 24})
	register(Kernel{Name: "correlation", Build: buildCorrelation, Native: nativeCorrelation, DefaultN: 24})
	register(Kernel{Name: "deriche", Build: buildDeriche, Native: nativeDeriche, DefaultN: 32})
	register(Kernel{Name: "nussinov", Build: buildNussinov, Native: nativeNussinov, DefaultN: 26})
}
