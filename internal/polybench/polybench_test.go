package polybench_test

import (
	"math"
	"testing"

	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/polybench"
	"acctee/internal/wasm/validate"
	"acctee/internal/weights"
)

func TestAll29KernelsRegistered(t *testing.T) {
	names := polybench.Names()
	if len(names) != 29 {
		t.Fatalf("registered kernels = %d (%v), want 29", len(names), names)
	}
	want := []string{
		"2mm", "3mm", "adi", "atax", "bicg", "cholesky", "correlation",
		"covariance", "deriche", "doitgen", "durbin", "fdtd-2d", "gemm",
		"gemver", "gesummv", "gramschmidt", "heat-3d", "jacobi-1d",
		"jacobi-2d", "lu", "ludcmp", "mvt", "nussinov", "seidel-2d", "symm",
		"syr2k", "syrk", "trisolv", "trmm",
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
}

// TestKernelsMatchNative is the suite's correctness oracle: the wasm build
// of every kernel must produce the same checksum as its native reference,
// bit-for-bit (identical IEEE-754 operation sequences).
func TestKernelsMatchNative(t *testing.T) {
	for _, name := range polybench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, err := polybench.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			n := k.DefaultN
			if n > 16 {
				n = 16 // keep unit tests quick; benches use DefaultN
			}
			m, err := k.Build(n)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := validate.Module(m); err != nil {
				t.Fatalf("validate: %v", err)
			}
			vm, err := interp.Instantiate(m, interp.Config{})
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			res, err := vm.InvokeExport("run")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := math.Float64frombits(res[0])
			want := k.Native(n)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("checksum mismatch: wasm %v (%x) vs native %v (%x)",
					got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("degenerate checksum %v", got)
			}
		})
	}
}

// TestKernelsInstrumentedExact checks the exactness invariant on three
// representative kernels at every instrumentation level.
func TestKernelsInstrumentedExact(t *testing.T) {
	for _, name := range []string{"gemm", "jacobi-2d", "nussinov"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Build(10)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		ref, err := interp.Instantiate(m, interp.Config{CostModel: weights.Unit()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.InvokeExport("run"); err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		want := ref.Cost()
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(m, instrument.Options{Level: lvl})
			if err != nil {
				t.Fatalf("%s %v: instrument: %v", name, lvl, err)
			}
			vm, err := interp.Instantiate(res.Module, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vm.InvokeExport("run"); err != nil {
				t.Fatalf("%s %v: run: %v", name, lvl, err)
			}
			got, _ := vm.Global(res.CounterGlobal)
			if got != want {
				t.Errorf("%s %v: counter %d != ground truth %d", name, lvl, got, want)
			}
		}
	}
}

// TestLoopOptimisationAppliesToKernels: the counted-loop pattern should be
// found in the loop-nest-heavy kernels.
func TestLoopOptimisationAppliesToKernels(t *testing.T) {
	k, _ := polybench.Get("gemm")
	m, err := k.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LoopsOptimised == 0 {
		t.Error("no counted loops optimised in gemm")
	}
}

func TestGetUnknownKernel(t *testing.T) {
	if _, err := polybench.Get("nope"); err == nil {
		t.Error("expected error for unknown kernel")
	}
}

// TestInstrumentationPreservesResults: injecting the counter must never
// change what the workload computes — instrumented kernels produce
// bit-identical checksums.
func TestInstrumentationPreservesResults(t *testing.T) {
	for _, name := range []string{"gemm", "cholesky", "fdtd-2d", "durbin", "nussinov"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Build(12)
		if err != nil {
			t.Fatal(err)
		}
		want := k.Native(12)
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(m, instrument.Options{Level: lvl})
			if err != nil {
				t.Fatalf("%s %v: %v", name, lvl, err)
			}
			vm, err := interp.Instantiate(res.Module, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			out, err := vm.InvokeExport("run")
			if err != nil {
				t.Fatalf("%s %v: %v", name, lvl, err)
			}
			if got := math.Float64frombits(out[0]); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s %v: instrumented checksum %v != native %v", name, lvl, got, want)
			}
		}
	}
}

// TestKernelsScaleInvariant: kernels remain correct at a second problem
// size (guards against size-dependent indexing bugs).
func TestKernelsScaleInvariant(t *testing.T) {
	for _, name := range []string{"2mm", "atax", "jacobi-2d", "lu", "covariance", "heat-3d"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{8, 20} {
			m, err := k.Build(n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			vm, err := interp.Instantiate(m, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := vm.InvokeExport("run")
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if got, want := math.Float64frombits(res[0]), k.Native(n); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s n=%d: %v != %v", name, n, got, want)
			}
		}
	}
}
