package polybench

import (
	"acctee/internal/wasm"
)

// This file implements the stencil PolyBench kernels: jacobi-1d, jacobi-2d,
// fdtd-2d, heat-3d, seidel-2d, adi. Time-step counts scale with the problem
// size so the interpreter finishes quickly.

func tsteps(n int) int {
	t := n / 5
	if t < 2 {
		t = 2
	}
	return t
}

// iaddc pushes e + c.
func (k *kb) iaddc(e expr, c int32) expr { return k.iadd(e, k.ci(c)) }

// isubc pushes e - c.
func (k *kb) isubc(e expr, c int32) expr {
	return func() {
		e()
		k.f.I32Const(c).Op(wasm.OpI32Sub)
	}
}

// ---------------------------------------------------------------------------
// jacobi-1d: two-array 3-point stencil

func buildJacobi1d(n int) (*wasm.Module, error) {
	k, _ := newKB("jacobi-1d")
	N := int32(n)
	T := int32(tsteps(n))
	A := k.alloc(n)
	B := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	t, i := k.local(), k.local()
	acc := k.flocal()
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(A, k.get(i), k.div(k.i2f(k.iaddc(k.get(i), 2)), k.cf(float64(n))))
		k.fstore(B, k.get(i), k.div(k.i2f(k.iaddc(k.get(i), 3)), k.cf(float64(n))))
	})
	k.loop(t, k.ci(0), k.ci(T), func() {
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.fstore(B, k.get(i),
				k.mul(k.cf(0.33333),
					k.add(k.add(k.fload(A, k.isubc(k.get(i), 1)), k.fload(A, k.get(i))),
						k.fload(A, k.iaddc(k.get(i), 1)))))
		})
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.fstore(A, k.get(i),
				k.mul(k.cf(0.33333),
					k.add(k.add(k.fload(B, k.isubc(k.get(i), 1)), k.fload(B, k.get(i))),
						k.fload(B, k.iaddc(k.get(i), 1)))))
		})
	})
	k.checksum([]int32{A}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeJacobi1d(n int) float64 {
	A := make([]float64, n)
	B := make([]float64, n)
	for i := 0; i < n; i++ {
		A[i] = float64(i+2) / float64(n)
		B[i] = float64(i+3) / float64(n)
	}
	for t := 0; t < tsteps(n); t++ {
		for i := 1; i < n-1; i++ {
			B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1])
		}
		for i := 1; i < n-1; i++ {
			A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1])
		}
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// jacobi-2d: two-array 5-point stencil

func buildJacobi2d(n int) (*wasm.Module, error) {
	k, _ := newKB("jacobi-2d")
	N := int32(n)
	T := int32(tsteps(n))
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	t, i, j := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 2, N, int(N))
	k.init2(B, N, N, i, j, 3, N, int(N))
	stencil := func(dst, src int32) {
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.f.ForI32(j, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
				k.fstore(dst, k.idx2(k.get(i), N, k.get(j)),
					k.mul(k.cf(0.2),
						k.add(k.add(k.add(k.add(
							k.fload(src, k.idx2(k.get(i), N, k.get(j))),
							k.fload(src, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))),
							k.fload(src, k.idx2(k.get(i), N, k.iaddc(k.get(j), 1)))),
							k.fload(src, k.idx2(k.iaddc(k.get(i), 1), N, k.get(j)))),
							k.fload(src, k.idx2(k.isubc(k.get(i), 1), N, k.get(j))))))
			})
		})
	}
	k.loop(t, k.ci(0), k.ci(T), func() {
		stencil(B, A)
		stencil(A, B)
	})
	k.checksum([]int32{A}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeJacobi2d(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	nativeInit2(A, n, n, 2, n, n)
	nativeInit2(B, n, n, 3, n, n)
	stencil := func(dst, src []float64) {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dst[i*n+j] = 0.2 * (src[i*n+j] + src[i*n+j-1] + src[i*n+j+1] + src[(i+1)*n+j] + src[(i-1)*n+j])
			}
		}
	}
	for t := 0; t < tsteps(n); t++ {
		stencil(B, A)
		stencil(A, B)
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// seidel-2d: in-place 9-point Gauss-Seidel

func buildSeidel2d(n int) (*wasm.Module, error) {
	k, _ := newKB("seidel-2d")
	N := int32(n)
	T := int32(tsteps(n))
	A := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	t, i, j := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 2, N, int(N))
	k.loop(t, k.ci(0), k.ci(T), func() {
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.f.ForI32(j, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
				sumAll := k.add(k.add(k.add(k.add(k.add(k.add(k.add(k.add(
					k.fload(A, k.idx2(k.isubc(k.get(i), 1), N, k.isubc(k.get(j), 1))),
					k.fload(A, k.idx2(k.isubc(k.get(i), 1), N, k.get(j)))),
					k.fload(A, k.idx2(k.isubc(k.get(i), 1), N, k.iaddc(k.get(j), 1)))),
					k.fload(A, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))),
					k.fload(A, k.idx2(k.get(i), N, k.get(j)))),
					k.fload(A, k.idx2(k.get(i), N, k.iaddc(k.get(j), 1)))),
					k.fload(A, k.idx2(k.iaddc(k.get(i), 1), N, k.isubc(k.get(j), 1)))),
					k.fload(A, k.idx2(k.iaddc(k.get(i), 1), N, k.get(j)))),
					k.fload(A, k.idx2(k.iaddc(k.get(i), 1), N, k.iaddc(k.get(j), 1))))
				k.fstore(A, k.idx2(k.get(i), N, k.get(j)), k.div(sumAll, k.cf(9)))
			})
		})
	})
	k.checksum([]int32{A}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeSeidel2d(n int) float64 {
	A := make([]float64, n*n)
	nativeInit2(A, n, n, 2, n, n)
	for t := 0; t < tsteps(n); t++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				A[i*n+j] = (A[(i-1)*n+j-1] + A[(i-1)*n+j] + A[(i-1)*n+j+1] +
					A[i*n+j-1] + A[i*n+j] + A[i*n+j+1] +
					A[(i+1)*n+j-1] + A[(i+1)*n+j] + A[(i+1)*n+j+1]) / 9
			}
		}
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// fdtd-2d: finite-difference time domain

func buildFdtd2d(n int) (*wasm.Module, error) {
	k, _ := newKB("fdtd-2d")
	N := int32(n)
	T := int32(tsteps(n))
	ex := k.alloc(n * n)
	ey := k.alloc(n * n)
	hz := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	t, i, j := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(ex, N, N, i, j, 1, N, int(N)+1)
	k.init2(ey, N, N, i, j, 2, N, int(N)+2)
	k.init2(hz, N, N, i, j, 3, N, int(N)+3)
	k.loop(t, k.ci(0), k.ci(T), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(ey, k.idx2(k.ci(0), N, k.get(j)), k.i2f(k.get(t)))
		})
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N)), 1, func() {
			k.loop(j, k.ci(0), k.ci(N), func() {
				k.fstore(ey, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(ey, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.cf(0.5),
							k.sub(k.fload(hz, k.idx2(k.get(i), N, k.get(j))),
								k.fload(hz, k.idx2(k.isubc(k.get(i), 1), N, k.get(j)))))))
			})
		})
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.f.ForI32(j, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N)), 1, func() {
				k.fstore(ex, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(ex, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.cf(0.5),
							k.sub(k.fload(hz, k.idx2(k.get(i), N, k.get(j))),
								k.fload(hz, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))))))
			})
		})
		k.loop(i, k.ci(0), k.ci(N-1), func() {
			k.loop(j, k.ci(0), k.ci(N-1), func() {
				k.fstore(hz, k.idx2(k.get(i), N, k.get(j)),
					k.sub(k.fload(hz, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.cf(0.7),
							k.add(
								k.sub(k.fload(ex, k.idx2(k.get(i), N, k.iaddc(k.get(j), 1))),
									k.fload(ex, k.idx2(k.get(i), N, k.get(j)))),
								k.sub(k.fload(ey, k.idx2(k.iaddc(k.get(i), 1), N, k.get(j))),
									k.fload(ey, k.idx2(k.get(i), N, k.get(j))))))))
			})
		})
	})
	k.checksum([]int32{hz}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeFdtd2d(n int) float64 {
	ex := make([]float64, n*n)
	ey := make([]float64, n*n)
	hz := make([]float64, n*n)
	nativeInit2(ex, n, n, 1, n, n+1)
	nativeInit2(ey, n, n, 2, n, n+2)
	nativeInit2(hz, n, n, 3, n, n+3)
	for t := 0; t < tsteps(n); t++ {
		for j := 0; j < n; j++ {
			ey[j] = float64(t)
		}
		for i := 1; i < n; i++ {
			for j := 0; j < n; j++ {
				ey[i*n+j] = ey[i*n+j] - 0.5*(hz[i*n+j]-hz[(i-1)*n+j])
			}
		}
		for i := 0; i < n; i++ {
			for j := 1; j < n; j++ {
				ex[i*n+j] = ex[i*n+j] - 0.5*(hz[i*n+j]-hz[i*n+j-1])
			}
		}
		for i := 0; i < n-1; i++ {
			for j := 0; j < n-1; j++ {
				hz[i*n+j] = hz[i*n+j] - 0.7*(ex[i*n+j+1]-ex[i*n+j]+ey[(i+1)*n+j]-ey[i*n+j])
			}
		}
	}
	return sum(hz)
}

// ---------------------------------------------------------------------------
// heat-3d: 3-D heat equation, two arrays

func buildHeat3d(n int) (*wasm.Module, error) {
	k, _ := newKB("heat-3d")
	N := int32(n)
	T := int32(tsteps(n))
	A := k.alloc(n * n * n)
	B := k.alloc(n * n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	t, i, j, l := k.local(), k.local(), k.local(), k.local()
	acc := k.flocal()
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.loop(l, k.ci(0), k.ci(N), func() {
				v := k.div(k.i2f(k.iadd(k.iadd(k.get(i), k.get(j)), k.iaddc(k.get(l), 10))), k.cf(float64(n)))
				k.fstore(A, k.idx3(k.get(i), N, k.get(j), N, k.get(l)), v)
				v2 := k.div(k.i2f(k.iadd(k.iadd(k.get(i), k.get(j)), k.iaddc(k.get(l), 10))), k.cf(float64(n)))
				k.fstore(B, k.idx3(k.get(i), N, k.get(j), N, k.get(l)), v2)
			})
		})
	})
	step := func(dst, src int32) {
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.f.ForI32(j, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
				k.f.ForI32(l, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
					axis := func(p, m expr) expr {
						c := k.fload(src, k.idx3(k.get(i), N, k.get(j), N, k.get(l)))
						return k.mul(k.cf(0.125), k.add(k.sub(p, k.mul(k.cf(2), c)), m))
					}
					xp := k.fload(src, k.idx3(k.iaddc(k.get(i), 1), N, k.get(j), N, k.get(l)))
					xm := k.fload(src, k.idx3(k.isubc(k.get(i), 1), N, k.get(j), N, k.get(l)))
					yp := k.fload(src, k.idx3(k.get(i), N, k.iaddc(k.get(j), 1), N, k.get(l)))
					ym := k.fload(src, k.idx3(k.get(i), N, k.isubc(k.get(j), 1), N, k.get(l)))
					zp := k.fload(src, k.idx3(k.get(i), N, k.get(j), N, k.iaddc(k.get(l), 1)))
					zm := k.fload(src, k.idx3(k.get(i), N, k.get(j), N, k.isubc(k.get(l), 1)))
					c := k.fload(src, k.idx3(k.get(i), N, k.get(j), N, k.get(l)))
					k.fstore(dst, k.idx3(k.get(i), N, k.get(j), N, k.get(l)),
						k.add(k.add(k.add(axis(xp, xm), axis(yp, ym)), axis(zp, zm)), c))
				})
			})
		})
	}
	k.loop(t, k.ci(0), k.ci(T), func() {
		step(B, A)
		step(A, B)
	})
	k.checksum([]int32{A}, []int{n * n * n}, acc, i)
	return k.finishModule()
}

func nativeHeat3d(n int) float64 {
	A := make([]float64, n*n*n)
	B := make([]float64, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for l := 0; l < n; l++ {
				A[(i*n+j)*n+l] = float64(i+j+l+10) / float64(n)
				B[(i*n+j)*n+l] = float64(i+j+l+10) / float64(n)
			}
		}
	}
	idx := func(i, j, l int) int { return (i*n+j)*n + l }
	step := func(dst, src []float64) {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				for l := 1; l < n-1; l++ {
					c := src[idx(i, j, l)]
					x := 0.125 * (src[idx(i+1, j, l)] - 2*c + src[idx(i-1, j, l)])
					y := 0.125 * (src[idx(i, j+1, l)] - 2*c + src[idx(i, j-1, l)])
					z := 0.125 * (src[idx(i, j, l+1)] - 2*c + src[idx(i, j, l-1)])
					dst[idx(i, j, l)] = x + y + z + c
				}
			}
		}
	}
	for t := 0; t < tsteps(n); t++ {
		step(B, A)
		step(A, B)
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// adi: alternating direction implicit integration (simplified sweeps with
// the original's column/row alternation and data flow)

func buildAdi(n int) (*wasm.Module, error) {
	k, _ := newKB("adi")
	N := int32(n)
	T := int32(tsteps(n))
	u := k.alloc(n * n)
	v := k.alloc(n * n)
	p := k.alloc(n * n)
	q := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	t, i, j, jj := k.local(), k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(u, N, N, i, j, 1, N, int(N))
	const a, b, c, d, e, f = 0.21, 0.58, 0.21, 0.21, 0.58, 0.21
	k.loop(t, k.ci(0), k.ci(T), func() {
		// column sweep
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.fstore(v, k.idx2(k.ci(0), N, k.get(i)), k.cf(1))
			k.fstore(p, k.idx2(k.get(i), N, k.ci(0)), k.cf(0))
			k.fstore(q, k.idx2(k.get(i), N, k.ci(0)), k.cf(1))
			k.f.ForI32(j, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
				denom := k.sub(k.cf(b), k.mul(k.cf(a), k.fload(p, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))))
				k.fstore(p, k.idx2(k.get(i), N, k.get(j)), k.div(k.cf(0-c), denom))
				denom2 := k.sub(k.cf(b), k.mul(k.cf(a), k.fload(p, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))))
				num := k.add(
					k.sub(k.fload(u, k.idx2(k.get(j), N, k.get(i))),
						k.mul(k.cf(d), k.fload(u, k.idx2(k.get(j), N, k.isubc(k.get(i), 1))))),
					k.add(k.mul(k.cf(e), k.fload(u, k.idx2(k.get(j), N, k.get(i)))),
						k.mul(k.mul(k.cf(a), k.cf(-1)), k.fload(q, k.idx2(k.get(i), N, k.isubc(k.get(j), 1))))))
				k.fstore(q, k.idx2(k.get(i), N, k.get(j)), k.div(num, denom2))
			})
			k.fstore(v, k.idx2(k.ci(int32(n)-1), N, k.get(i)), k.cf(1))
			// back substitution (descending j)
			k.loop(jj, k.ci(0), k.ci(N-2), func() {
				k.f.I32Const(N - 2).LocalGet(jj).Op(wasm.OpI32Sub).LocalSet(j)
				k.fstore(v, k.idx2(k.get(j), N, k.get(i)),
					k.add(k.mul(k.fload(p, k.idx2(k.get(i), N, k.get(j))),
						k.fload(v, k.idx2(k.iaddc(k.get(j), 1), N, k.get(i)))),
						k.fload(q, k.idx2(k.get(i), N, k.get(j)))))
			})
		})
		// row sweep
		k.f.ForI32(i, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
			k.fstore(u, k.idx2(k.get(i), N, k.ci(0)), k.cf(1))
			k.fstore(p, k.idx2(k.get(i), N, k.ci(0)), k.cf(0))
			k.fstore(q, k.idx2(k.get(i), N, k.ci(0)), k.cf(1))
			k.f.ForI32(j, exprInstrs(k, k.ci(1)), exprInstrs(k, k.ci(N-1)), 1, func() {
				denom := k.sub(k.cf(e), k.mul(k.cf(d), k.fload(p, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))))
				k.fstore(p, k.idx2(k.get(i), N, k.get(j)), k.div(k.cf(0-f), denom))
				denom2 := k.sub(k.cf(e), k.mul(k.cf(d), k.fload(p, k.idx2(k.get(i), N, k.isubc(k.get(j), 1)))))
				num := k.add(
					k.sub(k.fload(v, k.idx2(k.isubc(k.get(i), 1), N, k.get(j))),
						k.mul(k.cf(a), k.fload(v, k.idx2(k.get(i), N, k.get(j))))),
					k.add(k.mul(k.cf(b), k.fload(v, k.idx2(k.get(i), N, k.get(j)))),
						k.mul(k.mul(k.cf(d), k.cf(-1)), k.fload(q, k.idx2(k.get(i), N, k.isubc(k.get(j), 1))))))
				k.fstore(q, k.idx2(k.get(i), N, k.get(j)), k.div(num, denom2))
			})
			k.fstore(u, k.idx2(k.get(i), N, k.ci(int32(n)-1)), k.cf(1))
			k.loop(jj, k.ci(0), k.ci(N-2), func() {
				k.f.I32Const(N - 2).LocalGet(jj).Op(wasm.OpI32Sub).LocalSet(j)
				k.fstore(u, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.mul(k.fload(p, k.idx2(k.get(i), N, k.get(j))),
						k.fload(u, k.idx2(k.get(i), N, k.iaddc(k.get(j), 1)))),
						k.fload(q, k.idx2(k.get(i), N, k.get(j)))))
			})
		})
	})
	k.checksum([]int32{u}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeAdi(n int) float64 {
	u := make([]float64, n*n)
	v := make([]float64, n*n)
	p := make([]float64, n*n)
	q := make([]float64, n*n)
	nativeInit2(u, n, n, 1, n, n)
	const a, b, c, d, e, f = 0.21, 0.58, 0.21, 0.21, 0.58, 0.21
	for t := 0; t < tsteps(n); t++ {
		for i := 1; i < n-1; i++ {
			v[0*n+i] = 1
			p[i*n+0] = 0
			q[i*n+0] = 1
			for j := 1; j < n-1; j++ {
				p[i*n+j] = (0 - c) / (b - a*p[i*n+j-1])
				q[i*n+j] = (u[j*n+i] - d*u[j*n+i-1] + (e*u[j*n+i] + a*(-1)*q[i*n+j-1])) / (b - a*p[i*n+j-1])
			}
			v[(n-1)*n+i] = 1
			for jj := 0; jj < n-2; jj++ {
				j := n - 2 - jj
				v[j*n+i] = p[i*n+j]*v[(j+1)*n+i] + q[i*n+j]
			}
		}
		for i := 1; i < n-1; i++ {
			u[i*n+0] = 1
			p[i*n+0] = 0
			q[i*n+0] = 1
			for j := 1; j < n-1; j++ {
				p[i*n+j] = (0 - f) / (e - d*p[i*n+j-1])
				q[i*n+j] = (v[(i-1)*n+j] - a*v[i*n+j] + (b*v[i*n+j] + d*(-1)*q[i*n+j-1])) / (e - d*p[i*n+j-1])
			}
			u[i*n+n-1] = 1
			for jj := 0; jj < n-2; jj++ {
				j := n - 2 - jj
				u[i*n+j] = p[i*n+j]*u[i*n+j+1] + q[i*n+j]
			}
		}
	}
	return sum(u)
}

func registerStencils() {
	register(Kernel{Name: "jacobi-1d", Build: buildJacobi1d, Native: nativeJacobi1d, DefaultN: 120})
	register(Kernel{Name: "jacobi-2d", Build: buildJacobi2d, Native: nativeJacobi2d, DefaultN: 24})
	register(Kernel{Name: "seidel-2d", Build: buildSeidel2d, Native: nativeSeidel2d, DefaultN: 24})
	register(Kernel{Name: "fdtd-2d", Build: buildFdtd2d, Native: nativeFdtd2d, DefaultN: 24, MemoryHeavy: true})
	register(Kernel{Name: "heat-3d", Build: buildHeat3d, Native: nativeHeat3d, DefaultN: 12, MemoryHeavy: true})
	register(Kernel{Name: "adi", Build: buildAdi, Native: nativeAdi, DefaultN: 22})
}
