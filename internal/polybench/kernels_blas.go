package polybench

import (
	"acctee/internal/wasm"
)

// This file implements the linear-algebra (BLAS-like) PolyBench kernels:
// gemm, gemver, gesummv, symm, syr2k, syrk, trmm, 2mm, 3mm, atax, bicg,
// mvt, doitgen. Each kernel mirrors the PolyBench/C 4.2.1 loop structure;
// the wasm and native versions perform the same IEEE-754 operations in the
// same order, so checksums match exactly.

// initFormula is the PolyBench-style deterministic initialiser
// ((i*op j + c) % m) / n as f64.
func initVal(i, j, c, m, n int) float64 {
	return float64((i*j+c)%m) / float64(n)
}

// init2 emits arr[i][j] = ((i*j+c) % m)/n for the wasm side.
func (k *kb) init2(base int32, rows, cols int32, i, j uint32, c, m int32, n int) {
	k.loop(i, k.ci(0), k.ci(rows), func() {
		k.loop(j, k.ci(0), k.ci(cols), func() {
			k.fstore(base, k.idx2(k.get(i), cols, k.get(j)),
				k.div(k.i2f(k.imod(k.iadd(k.imul(k.get(i), k.get(j)), k.ci(c)), m)), k.cf(float64(n))))
		})
	})
}

// init1 emits arr[i] = ((i*f+c) % m)/n.
func (k *kb) init1(base int32, count int32, i uint32, f, c, m int32, n int) {
	k.loop(i, k.ci(0), k.ci(count), func() {
		k.fstore(base, k.get(i),
			k.div(k.i2f(k.imod(k.iadd(k.imul(k.get(i), k.ci(f)), k.ci(c)), m)), k.cf(float64(n))))
	})
}

func nativeInit2(a []float64, rows, cols, c, m, n int) {
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a[i*cols+j] = float64((i*j+c)%m) / float64(n)
		}
	}
}

func nativeInit1(a []float64, count, f, c, m, n int) {
	for i := 0; i < count; i++ {
		a[i] = float64((i*f+c)%m) / float64(n)
	}
}

func sum(arrs ...[]float64) float64 {
	var s float64
	for _, a := range arrs {
		for _, v := range a {
			s += v
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// gemm: C = alpha*A*B + beta*C

func buildGemm(n int) (*wasm.Module, error) {
	k, _ := newKB("gemm")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	C := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	k.init2(C, N, N, i, j, 3, N, int(N))
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.fload(C, k.idx2(k.get(i), N, k.get(j))), k.cf(beta)))
		})
		k.loop(l, k.ci(0), k.ci(N), func() {
			k.loop(j, k.ci(0), k.ci(N), func() {
				k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(C, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.mul(k.cf(alpha), k.fload(A, k.idx2(k.get(i), N, k.get(l)))),
							k.fload(B, k.idx2(k.get(l), N, k.get(j))))))
			})
		})
	})
	k.checksum([]int32{C}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeGemm(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	C := make([]float64, n*n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	nativeInit2(C, n, n, 3, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			C[i*n+j] = C[i*n+j] * beta
		}
		for l := 0; l < n; l++ {
			for j := 0; j < n; j++ {
				C[i*n+j] = C[i*n+j] + alpha*A[i*n+l]*B[l*n+j]
			}
		}
	}
	return sum(C)
}

// ---------------------------------------------------------------------------
// gesummv: y = alpha*A*x + beta*B*x

func buildGesummv(n int) (*wasm.Module, error) {
	k, _ := newKB("gesummv")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	x := k.alloc(n)
	y := k.alloc(n)
	tmp := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j := k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	k.init1(x, N, i, 3, 1, N, int(N))
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(tmp, k.get(i), k.cf(0))
		k.fstore(y, k.get(i), k.cf(0))
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(tmp, k.get(i),
				k.add(k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(x, k.get(j))),
					k.fload(tmp, k.get(i))))
			k.fstore(y, k.get(i),
				k.add(k.mul(k.fload(B, k.idx2(k.get(i), N, k.get(j))), k.fload(x, k.get(j))),
					k.fload(y, k.get(i))))
		})
		k.fstore(y, k.get(i),
			k.add(k.mul(k.cf(alpha), k.fload(tmp, k.get(i))),
				k.mul(k.cf(beta), k.fload(y, k.get(i)))))
	})
	k.checksum([]int32{y}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeGesummv(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	x := make([]float64, n)
	y := make([]float64, n)
	tmp := make([]float64, n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	nativeInit1(x, n, 3, 1, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		tmp[i] = 0
		y[i] = 0
		for j := 0; j < n; j++ {
			tmp[i] = A[i*n+j]*x[j] + tmp[i]
			y[i] = B[i*n+j]*x[j] + y[i]
		}
		y[i] = alpha*tmp[i] + beta*y[i]
	}
	return sum(y)
}

// ---------------------------------------------------------------------------
// gemver: multiple matrix-vector products and rank-1 updates

func buildGemver(n int) (*wasm.Module, error) {
	k, _ := newKB("gemver")
	N := int32(n)
	A := k.alloc(n * n)
	u1 := k.alloc(n)
	v1 := k.alloc(n)
	u2 := k.alloc(n)
	v2 := k.alloc(n)
	w := k.alloc(n)
	x := k.alloc(n)
	y := k.alloc(n)
	z := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j := k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init1(u1, N, i, 1, 0, N, int(N))
	k.init1(v1, N, i, 2, 1, N, int(N))
	k.init1(u2, N, i, 3, 2, N, int(N))
	k.init1(v2, N, i, 4, 3, N, int(N))
	k.init1(y, N, i, 5, 4, N, int(N))
	k.init1(z, N, i, 6, 5, N, int(N))
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(x, k.get(i), k.cf(0))
		k.fstore(w, k.get(i), k.cf(0))
	})
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(A, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.fload(A, k.idx2(k.get(i), N, k.get(j))),
					k.add(k.mul(k.fload(u1, k.get(i)), k.fload(v1, k.get(j))),
						k.mul(k.fload(u2, k.get(i)), k.fload(v2, k.get(j))))))
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(x, k.get(i),
				k.add(k.fload(x, k.get(i)),
					k.mul(k.mul(k.cf(beta), k.fload(A, k.idx2(k.get(j), N, k.get(i)))),
						k.fload(y, k.get(j)))))
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(x, k.get(i), k.add(k.fload(x, k.get(i)), k.fload(z, k.get(i))))
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(w, k.get(i),
				k.add(k.fload(w, k.get(i)),
					k.mul(k.mul(k.cf(alpha), k.fload(A, k.idx2(k.get(i), N, k.get(j)))),
						k.fload(x, k.get(j)))))
		})
	})
	k.checksum([]int32{w}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeGemver(n int) float64 {
	A := make([]float64, n*n)
	u1 := make([]float64, n)
	v1 := make([]float64, n)
	u2 := make([]float64, n)
	v2 := make([]float64, n)
	w := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit1(u1, n, 1, 0, n, n)
	nativeInit1(v1, n, 2, 1, n, n)
	nativeInit1(u2, n, 3, 2, n, n)
	nativeInit1(v2, n, 4, 3, n, n)
	nativeInit1(y, n, 5, 4, n, n)
	nativeInit1(z, n, 6, 5, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			A[i*n+j] = A[i*n+j] + u1[i]*v1[j] + u2[i]*v2[j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[i] = x[i] + beta*A[j*n+i]*y[j]
		}
	}
	for i := 0; i < n; i++ {
		x[i] = x[i] + z[i]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[i] = w[i] + alpha*A[i*n+j]*x[j]
		}
	}
	return sum(w)
}

// ---------------------------------------------------------------------------
// atax: y = A^T (A x)

func buildAtax(n int) (*wasm.Module, error) {
	k, _ := newKB("atax")
	N := int32(n)
	A := k.alloc(n * n)
	x := k.alloc(n)
	y := k.alloc(n)
	tmp := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j := k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init1(x, N, i, 1, 1, N, int(N))
	k.loop(i, k.ci(0), k.ci(N), func() { k.fstore(y, k.get(i), k.cf(0)) })
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(tmp, k.get(i), k.cf(0))
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(tmp, k.get(i),
				k.add(k.fload(tmp, k.get(i)),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(x, k.get(j)))))
		})
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(y, k.get(j),
				k.add(k.fload(y, k.get(j)),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(tmp, k.get(i)))))
		})
	})
	k.checksum([]int32{y}, []int{n}, acc, i)
	return k.finishModule()
}

func nativeAtax(n int) float64 {
	A := make([]float64, n*n)
	x := make([]float64, n)
	y := make([]float64, n)
	tmp := make([]float64, n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit1(x, n, 1, 1, n, n)
	for i := 0; i < n; i++ {
		tmp[i] = 0
		for j := 0; j < n; j++ {
			tmp[i] = tmp[i] + A[i*n+j]*x[j]
		}
		for j := 0; j < n; j++ {
			y[j] = y[j] + A[i*n+j]*tmp[i]
		}
	}
	return sum(y)
}

// ---------------------------------------------------------------------------
// bicg: s = r^T A, q = A p

func buildBicg(n int) (*wasm.Module, error) {
	k, _ := newKB("bicg")
	N := int32(n)
	A := k.alloc(n * n)
	s := k.alloc(n)
	q := k.alloc(n)
	p := k.alloc(n)
	r := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j := k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init1(p, N, i, 1, 0, N, int(N))
	k.init1(r, N, i, 2, 1, N, int(N))
	k.loop(i, k.ci(0), k.ci(N), func() { k.fstore(s, k.get(i), k.cf(0)) })
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.fstore(q, k.get(i), k.cf(0))
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(s, k.get(j),
				k.add(k.fload(s, k.get(j)),
					k.mul(k.fload(r, k.get(i)), k.fload(A, k.idx2(k.get(i), N, k.get(j))))))
			k.fstore(q, k.get(i),
				k.add(k.fload(q, k.get(i)),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(p, k.get(j)))))
		})
	})
	k.checksum([]int32{s, q}, []int{n, n}, acc, i)
	return k.finishModule()
}

func nativeBicg(n int) float64 {
	A := make([]float64, n*n)
	s := make([]float64, n)
	q := make([]float64, n)
	p := make([]float64, n)
	r := make([]float64, n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit1(p, n, 1, 0, n, n)
	nativeInit1(r, n, 2, 1, n, n)
	for i := 0; i < n; i++ {
		q[i] = 0
		for j := 0; j < n; j++ {
			s[j] = s[j] + r[i]*A[i*n+j]
			q[i] = q[i] + A[i*n+j]*p[j]
		}
	}
	return sum(s, q)
}

// ---------------------------------------------------------------------------
// mvt: x1 += A y1 ; x2 += A^T y2

func buildMvt(n int) (*wasm.Module, error) {
	k, _ := newKB("mvt")
	N := int32(n)
	A := k.alloc(n * n)
	x1 := k.alloc(n)
	x2 := k.alloc(n)
	y1 := k.alloc(n)
	y2 := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j := k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init1(x1, N, i, 1, 0, N, int(N))
	k.init1(x2, N, i, 2, 1, N, int(N))
	k.init1(y1, N, i, 3, 2, N, int(N))
	k.init1(y2, N, i, 4, 3, N, int(N))
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(x1, k.get(i),
				k.add(k.fload(x1, k.get(i)),
					k.mul(k.fload(A, k.idx2(k.get(i), N, k.get(j))), k.fload(y1, k.get(j)))))
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(x2, k.get(i),
				k.add(k.fload(x2, k.get(i)),
					k.mul(k.fload(A, k.idx2(k.get(j), N, k.get(i))), k.fload(y2, k.get(j)))))
		})
	})
	k.checksum([]int32{x1, x2}, []int{n, n}, acc, i)
	return k.finishModule()
}

func nativeMvt(n int) float64 {
	A := make([]float64, n*n)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit1(x1, n, 1, 0, n, n)
	nativeInit1(x2, n, 2, 1, n, n)
	nativeInit1(y1, n, 3, 2, n, n)
	nativeInit1(y2, n, 4, 3, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x1[i] = x1[i] + A[i*n+j]*y1[j]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x2[i] = x2[i] + A[j*n+i]*y2[j]
		}
	}
	return sum(x1, x2)
}

// ---------------------------------------------------------------------------
// 2mm: D = alpha*A*B*C + beta*D

func build2mm(n int) (*wasm.Module, error) {
	k, _ := newKB("2mm")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	C := k.alloc(n * n)
	D := k.alloc(n * n)
	tmp := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	k.init2(C, N, N, i, j, 3, N, int(N))
	k.init2(D, N, N, i, j, 4, N, int(N))
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(tmp, k.idx2(k.get(i), N, k.get(j)), k.cf(0))
			k.loop(l, k.ci(0), k.ci(N), func() {
				k.fstore(tmp, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(tmp, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.mul(k.cf(alpha), k.fload(A, k.idx2(k.get(i), N, k.get(l)))),
							k.fload(B, k.idx2(k.get(l), N, k.get(j))))))
			})
		})
	})
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fstore(D, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.fload(D, k.idx2(k.get(i), N, k.get(j))), k.cf(beta)))
			k.loop(l, k.ci(0), k.ci(N), func() {
				k.fstore(D, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(D, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(tmp, k.idx2(k.get(i), N, k.get(l))),
							k.fload(C, k.idx2(k.get(l), N, k.get(j))))))
			})
		})
	})
	k.checksum([]int32{D}, []int{n * n}, acc, i)
	return k.finishModule()
}

func native2mm(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	C := make([]float64, n*n)
	D := make([]float64, n*n)
	tmp := make([]float64, n*n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	nativeInit2(C, n, n, 3, n, n)
	nativeInit2(D, n, n, 4, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tmp[i*n+j] = 0
			for l := 0; l < n; l++ {
				tmp[i*n+j] = tmp[i*n+j] + alpha*A[i*n+l]*B[l*n+j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			D[i*n+j] = D[i*n+j] * beta
			for l := 0; l < n; l++ {
				D[i*n+j] = D[i*n+j] + tmp[i*n+l]*C[l*n+j]
			}
		}
	}
	return sum(D)
}

// ---------------------------------------------------------------------------
// 3mm: G = (A*B)*(C*D)

func build3mm(n int) (*wasm.Module, error) {
	k, _ := newKB("3mm")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	C := k.alloc(n * n)
	D := k.alloc(n * n)
	E := k.alloc(n * n)
	F := k.alloc(n * n)
	G := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	k.init2(C, N, N, i, j, 3, N, int(N))
	k.init2(D, N, N, i, j, 4, N, int(N))
	matmul := func(dst, x, y int32) {
		k.loop(i, k.ci(0), k.ci(N), func() {
			k.loop(j, k.ci(0), k.ci(N), func() {
				k.fstore(dst, k.idx2(k.get(i), N, k.get(j)), k.cf(0))
				k.loop(l, k.ci(0), k.ci(N), func() {
					k.fstore(dst, k.idx2(k.get(i), N, k.get(j)),
						k.add(k.fload(dst, k.idx2(k.get(i), N, k.get(j))),
							k.mul(k.fload(x, k.idx2(k.get(i), N, k.get(l))),
								k.fload(y, k.idx2(k.get(l), N, k.get(j))))))
				})
			})
		})
	}
	matmul(E, A, B)
	matmul(F, C, D)
	matmul(G, E, F)
	k.checksum([]int32{G}, []int{n * n}, acc, i)
	return k.finishModule()
}

func native3mm(n int) float64 {
	mk := func() []float64 { return make([]float64, n*n) }
	A, B, C, D, E, F, G := mk(), mk(), mk(), mk(), mk(), mk(), mk()
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	nativeInit2(C, n, n, 3, n, n)
	nativeInit2(D, n, n, 4, n, n)
	matmul := func(dst, x, y []float64) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dst[i*n+j] = 0
				for l := 0; l < n; l++ {
					dst[i*n+j] = dst[i*n+j] + x[i*n+l]*y[l*n+j]
				}
			}
		}
	}
	matmul(E, A, B)
	matmul(F, C, D)
	matmul(G, E, F)
	return sum(G)
}

// ---------------------------------------------------------------------------
// doitgen: 3-D tensor times matrix

func buildDoitgen(n int) (*wasm.Module, error) {
	k, _ := newKB("doitgen")
	N := int32(n)
	A := k.alloc(n * n * n)
	C4 := k.alloc(n * n)
	sumv := k.alloc(n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	r, q, p, s := k.local(), k.local(), k.local(), k.local()
	acc := k.flocal()
	// init A[r][q][p] = ((r*q+p)%n)/n
	k.loop(r, k.ci(0), k.ci(N), func() {
		k.loop(q, k.ci(0), k.ci(N), func() {
			k.loop(p, k.ci(0), k.ci(N), func() {
				k.fstore(A, k.idx3(k.get(r), N, k.get(q), N, k.get(p)),
					k.div(k.i2f(k.imod(k.iadd(k.imul(k.get(r), k.get(q)), k.get(p)), N)), k.cf(float64(n))))
			})
		})
	})
	k.init2(C4, N, N, r, q, 1, N, int(N))
	k.loop(r, k.ci(0), k.ci(N), func() {
		k.loop(q, k.ci(0), k.ci(N), func() {
			k.loop(p, k.ci(0), k.ci(N), func() {
				k.fstore(sumv, k.get(p), k.cf(0))
				k.loop(s, k.ci(0), k.ci(N), func() {
					k.fstore(sumv, k.get(p),
						k.add(k.fload(sumv, k.get(p)),
							k.mul(k.fload(A, k.idx3(k.get(r), N, k.get(q), N, k.get(s))),
								k.fload(C4, k.idx2(k.get(s), N, k.get(p))))))
				})
			})
			k.loop(p, k.ci(0), k.ci(N), func() {
				k.fstore(A, k.idx3(k.get(r), N, k.get(q), N, k.get(p)), k.fload(sumv, k.get(p)))
			})
		})
	})
	k.checksum([]int32{A}, []int{n * n * n}, acc, r)
	return k.finishModule()
}

func nativeDoitgen(n int) float64 {
	A := make([]float64, n*n*n)
	C4 := make([]float64, n*n)
	sumv := make([]float64, n)
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				A[(r*n+q)*n+p] = float64((r*q+p)%n) / float64(n)
			}
		}
	}
	nativeInit2(C4, n, n, 1, n, n)
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				sumv[p] = 0
				for s := 0; s < n; s++ {
					sumv[p] = sumv[p] + A[(r*n+q)*n+s]*C4[s*n+p]
				}
			}
			for p := 0; p < n; p++ {
				A[(r*n+q)*n+p] = sumv[p]
			}
		}
	}
	return sum(A)
}

// ---------------------------------------------------------------------------
// syrk: C = alpha*A*A^T + beta*C (lower triangle)

func buildSyrk(n int) (*wasm.Module, error) {
	k, _ := newKB("syrk")
	N := int32(n)
	A := k.alloc(n * n)
	C := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(C, N, N, i, j, 2, N, int(N))
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		// for j <= i
		k.loop(j, k.ci(0), k.iadd(k.get(i), k.ci(1)), func() {
			k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.fload(C, k.idx2(k.get(i), N, k.get(j))), k.cf(beta)))
		})
		k.loop(l, k.ci(0), k.ci(N), func() {
			k.loop(j, k.ci(0), k.iadd(k.get(i), k.ci(1)), func() {
				k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(C, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.mul(k.cf(alpha), k.fload(A, k.idx2(k.get(i), N, k.get(l)))),
							k.fload(A, k.idx2(k.get(j), N, k.get(l))))))
			})
		})
	})
	k.checksum([]int32{C}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeSyrk(n int) float64 {
	A := make([]float64, n*n)
	C := make([]float64, n*n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(C, n, n, 2, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			C[i*n+j] = C[i*n+j] * beta
		}
		for l := 0; l < n; l++ {
			for j := 0; j <= i; j++ {
				C[i*n+j] = C[i*n+j] + alpha*A[i*n+l]*A[j*n+l]
			}
		}
	}
	return sum(C)
}

// ---------------------------------------------------------------------------
// syr2k: C = alpha*(A*B^T + B*A^T) + beta*C (lower triangle)

func buildSyr2k(n int) (*wasm.Module, error) {
	k, _ := newKB("syr2k")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	C := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	k.init2(C, N, N, i, j, 3, N, int(N))
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.iadd(k.get(i), k.ci(1)), func() {
			k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.fload(C, k.idx2(k.get(i), N, k.get(j))), k.cf(beta)))
		})
		k.loop(l, k.ci(0), k.ci(N), func() {
			k.loop(j, k.ci(0), k.iadd(k.get(i), k.ci(1)), func() {
				k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(C, k.idx2(k.get(i), N, k.get(j))),
						k.add(
							k.mul(k.mul(k.fload(A, k.idx2(k.get(j), N, k.get(l))), k.cf(alpha)),
								k.fload(B, k.idx2(k.get(i), N, k.get(l)))),
							k.mul(k.mul(k.fload(B, k.idx2(k.get(j), N, k.get(l))), k.cf(alpha)),
								k.fload(A, k.idx2(k.get(i), N, k.get(l)))))))
			})
		})
	})
	k.checksum([]int32{C}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeSyr2k(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	C := make([]float64, n*n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	nativeInit2(C, n, n, 3, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			C[i*n+j] = C[i*n+j] * beta
		}
		for l := 0; l < n; l++ {
			for j := 0; j <= i; j++ {
				C[i*n+j] = C[i*n+j] + A[j*n+l]*alpha*B[i*n+l] + B[j*n+l]*alpha*A[i*n+l]
			}
		}
	}
	return sum(C)
}

// ---------------------------------------------------------------------------
// symm: symmetric matrix multiply

func buildSymm(n int) (*wasm.Module, error) {
	k, _ := newKB("symm")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	C := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	temp2 := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	k.init2(C, N, N, i, j, 3, N, int(N))
	const alpha, beta = 1.5, 1.2
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			k.fsetLocal(temp2, k.cf(0))
			k.loop(l, k.ci(0), k.get(i), func() {
				k.fstore(C, k.idx2(k.get(l), N, k.get(j)),
					k.add(k.fload(C, k.idx2(k.get(l), N, k.get(j))),
						k.mul(k.mul(k.cf(alpha), k.fload(B, k.idx2(k.get(i), N, k.get(j)))),
							k.fload(A, k.idx2(k.get(i), N, k.get(l))))))
				k.fsetLocal(temp2,
					k.add(k.fget(temp2),
						k.mul(k.fload(B, k.idx2(k.get(l), N, k.get(j))),
							k.fload(A, k.idx2(k.get(i), N, k.get(l))))))
			})
			k.fstore(C, k.idx2(k.get(i), N, k.get(j)),
				k.add(k.add(
					k.mul(k.cf(beta), k.fload(C, k.idx2(k.get(i), N, k.get(j)))),
					k.mul(k.mul(k.cf(alpha), k.fload(B, k.idx2(k.get(i), N, k.get(j)))),
						k.fload(A, k.idx2(k.get(i), N, k.get(i))))),
					k.mul(k.cf(alpha), k.fget(temp2))))
		})
	})
	k.checksum([]int32{C}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeSymm(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	C := make([]float64, n*n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	nativeInit2(C, n, n, 3, n, n)
	const alpha, beta = 1.5, 1.2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			temp2 := 0.0
			for l := 0; l < i; l++ {
				C[l*n+j] = C[l*n+j] + alpha*B[i*n+j]*A[i*n+l]
				temp2 = temp2 + B[l*n+j]*A[i*n+l]
			}
			C[i*n+j] = beta*C[i*n+j] + alpha*B[i*n+j]*A[i*n+i] + alpha*temp2
		}
	}
	return sum(C)
}

// ---------------------------------------------------------------------------
// trmm: triangular matrix multiply B := alpha * A^T * B

func buildTrmm(n int) (*wasm.Module, error) {
	k, _ := newKB("trmm")
	N := int32(n)
	A := k.alloc(n * n)
	B := k.alloc(n * n)
	k.b.Memory(k.pages(), k.pages())
	k.begin()
	i, j, l := k.local(), k.local(), k.local()
	acc := k.flocal()
	k.init2(A, N, N, i, j, 1, N, int(N))
	k.init2(B, N, N, i, j, 2, N, int(N))
	const alpha = 1.5
	k.loop(i, k.ci(0), k.ci(N), func() {
		k.loop(j, k.ci(0), k.ci(N), func() {
			// for l = i+1 .. n
			k.f.ForI32(l, exprInstrs(k, k.iadd(k.get(i), k.ci(1))), exprInstrs(k, k.ci(N)), 1, func() {
				k.fstore(B, k.idx2(k.get(i), N, k.get(j)),
					k.add(k.fload(B, k.idx2(k.get(i), N, k.get(j))),
						k.mul(k.fload(A, k.idx2(k.get(l), N, k.get(i))),
							k.fload(B, k.idx2(k.get(l), N, k.get(j))))))
			})
			k.fstore(B, k.idx2(k.get(i), N, k.get(j)),
				k.mul(k.cf(alpha), k.fload(B, k.idx2(k.get(i), N, k.get(j)))))
		})
	})
	k.checksum([]int32{B}, []int{n * n}, acc, i)
	return k.finishModule()
}

func nativeTrmm(n int) float64 {
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	nativeInit2(A, n, n, 1, n, n)
	nativeInit2(B, n, n, 2, n, n)
	const alpha = 1.5
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for l := i + 1; l < n; l++ {
				B[i*n+j] = B[i*n+j] + A[l*n+i]*B[l*n+j]
			}
			B[i*n+j] = alpha * B[i*n+j]
		}
	}
	return sum(B)
}

func registerBLAS() {
	register(Kernel{Name: "gemm", Build: buildGemm, Native: nativeGemm, DefaultN: 24})
	register(Kernel{Name: "gesummv", Build: buildGesummv, Native: nativeGesummv, DefaultN: 40})
	register(Kernel{Name: "gemver", Build: buildGemver, Native: nativeGemver, DefaultN: 40})
	register(Kernel{Name: "atax", Build: buildAtax, Native: nativeAtax, DefaultN: 40})
	register(Kernel{Name: "bicg", Build: buildBicg, Native: nativeBicg, DefaultN: 40})
	register(Kernel{Name: "mvt", Build: buildMvt, Native: nativeMvt, DefaultN: 40})
	register(Kernel{Name: "2mm", Build: build2mm, Native: native2mm, DefaultN: 20})
	register(Kernel{Name: "3mm", Build: build3mm, Native: native3mm, DefaultN: 18})
	register(Kernel{Name: "doitgen", Build: buildDoitgen, Native: nativeDoitgen, DefaultN: 14, MemoryHeavy: true})
	register(Kernel{Name: "syrk", Build: buildSyrk, Native: nativeSyrk, DefaultN: 24})
	register(Kernel{Name: "syr2k", Build: buildSyr2k, Native: nativeSyr2k, DefaultN: 22})
	register(Kernel{Name: "symm", Build: buildSymm, Native: nativeSymm, DefaultN: 24})
	register(Kernel{Name: "trmm", Build: buildTrmm, Native: nativeTrmm, DefaultN: 24})
}
