// Package faas implements the serverless evaluation infrastructure of the
// paper (§5.3, Fig. 9): an HTTP gateway that instantiates one WebAssembly
// sandbox per request ("To maintain isolation between the functions, the
// HTTP Server instantiates a new WebAssembly module for every incoming
// request"), six deployment setups (WASM, WASM-SGX SIM, WASM-SGX HW, HW
// +instrumentation, HW +I/O accounting, and the JavaScript/OpenFaaS
// baseline), and a concurrent load generator standing in for h2load.
package faas

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	"acctee/internal/workloads"
)

// Function selects the deployed FaaS function.
type Function int

// Deployed functions.
const (
	Echo Function = iota + 1
	Resize
)

// String names the function.
func (f Function) String() string {
	if f == Echo {
		return "echo"
	}
	return "resize"
}

// Setup is one of the paper's six deployment configurations.
type Setup int

// Deployment setups of Fig. 9.
const (
	SetupWASM Setup = iota + 1
	SetupSGXSim
	SetupSGXHW
	SetupSGXHWInstr
	SetupSGXHWIO
	SetupJS
)

// String names the setup as in Fig. 9.
func (s Setup) String() string {
	switch s {
	case SetupWASM:
		return "WASM"
	case SetupSGXSim:
		return "WASM-SGX SIM"
	case SetupSGXHW:
		return "WASM-SGX HW"
	case SetupSGXHWInstr:
		return "WASM-SGX HW instr."
	case SetupSGXHWIO:
		return "WASM-SGX HW I/O"
	case SetupJS:
		return "JS"
	}
	return "setup?"
}

// JSDispatchCost models the OpenFaaS classic-watchdog fork/exec plus Docker
// network hop the paper's JS baseline pays on every request (DESIGN.md §1:
// modelled, since Docker is unavailable here). It is busy-waited, not
// slept, because the watchdog burns CPU on fork+exec.
var JSDispatchCost = 12 * time.Millisecond

// Server is the FaaS gateway for one function in one setup. The function
// module is compiled once at construction; requests are served from a pool
// of sandbox instances deterministically reset between requests ("To
// maintain isolation between the functions, the HTTP Server instantiates a
// new WebAssembly module for every incoming request" — the reset gives the
// same isolation without repeating the lowering pass).
//
// In the instrumented setups every response additionally chains a usage
// record onto a sharded hash-chained ledger and returns a receipt in the
// X-Acct-Shard / X-Acct-Sequence / X-Acct-Chain headers; GET /receipt,
// GET /checkpoint and GET /ledger expose the record, a freshly batch-signed
// checkpoint, and the (streamed) offline-verifiable dump
// (cmd/acctee-verify; ?truncated=1 anchors it at the last compaction
// checkpoint), and /compact seals everything the current checkpoint covers
// so a long-running gateway's resident ledger stays bounded
// (ServerOptions.Ledger.Retention automates the trigger).
type Server struct {
	fn       Function
	setup    Setup
	opts     ServerOptions
	module   *wasm.Module           // nil for SetupJS
	compiled *interp.CompiledModule // nil for SetupJS
	pool     *interp.InstancePool   // nil for SetupJS
	counter  uint32                 // instrumented counter global (instr setups)
	enclave  *sgx.Enclave           // nil for non-SGX setups
	ledger   *accounting.Ledger     // instrumented setups only
	modHash  [32]byte
	costs    sgx.CostParams
	// Request counters are atomics, not a shared mutex: every response on
	// every connection bumps them, and a lock here serializes otherwise
	// independent requests at the very end of the handler.
	requests atomic.Uint64
	ioBytes  atomic.Uint64
	// Admission control: sem holds one slot per concurrently executing
	// invocation (nil = unlimited), queued counts requests waiting for a
	// slot, shed counts 429s issued, interrupted counts invocations the
	// deadline cut short.
	sem         chan struct{}
	queued      atomic.Int64
	shed        atomic.Uint64
	interrupted atomic.Uint64
}

// ServerOptions tune the gateway's compile/instantiate strategy and its
// accounting ledger.
type ServerOptions struct {
	// PoolDisabled instantiates a fresh VM per request from the cached
	// compiled artifact instead of reusing pooled instances.
	PoolDisabled bool
	// PoolPrewarm pre-instantiates this many sandbox instances at startup.
	PoolPrewarm int
	// RecompilePerRequest re-runs the full lowering pass on every request
	// (the pre-artifact behaviour). It exists as the before/after baseline
	// for the FaaS benchmark.
	RecompilePerRequest bool
	// Ledger tunes the instrumented setups' usage ledger: shard count,
	// per-record eager signing (the per-request-signature baseline), and
	// periodic checkpointing. Ignored by uninstrumented setups.
	Ledger accounting.LedgerOptions
	// RequestTimeout bounds each function invocation end to end. The
	// deadline (combined with the client disconnecting, via the request
	// context) propagates into the interpreter as a cooperative interrupt:
	// the run aborts at the next accounting segment boundary, the work
	// actually executed is charged to the ledger, and the response is a
	// 504 carrying the receipt of the partial run. Zero = no deadline.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing invocations; excess requests
	// wait on the bounded queue (MaxQueue) and are shed with 429 beyond
	// it. Zero = unlimited (no admission control). Ledger read endpoints
	// and health probes are never gated — they must answer precisely when
	// the gateway is saturated.
	MaxInFlight int
	// MaxQueue bounds how many admitted requests may wait for an execution
	// slot. Zero = no waiting room: requests shed as soon as every slot is
	// busy.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed (default 50ms when MaxQueue > 0). Short on
	// purpose: under sustained overload a long queue only converts
	// rejections into slow rejections.
	QueueTimeout time.Duration
}

// defaultQueueTimeout bounds a queued request's wait when the operator
// configured a queue but no explicit timeout.
const defaultQueueTimeout = 50 * time.Millisecond

// NewServer builds the gateway with default options (pooled instances over
// a cached compiled artifact).
func NewServer(fn Function, setup Setup) (*Server, error) {
	return NewServerWithOptions(fn, setup, ServerOptions{})
}

// NewServerWithOptions builds (and, where applicable, instruments) the
// function module once — the paper's cached-instrumentation deployment —
// compiles it into the shared execution artifact, and returns the gateway.
func NewServerWithOptions(fn Function, setup Setup, opts ServerOptions) (srv *Server, err error) {
	s := &Server{fn: fn, setup: setup, opts: opts, costs: sgx.DefaultCostParams()}
	if opts.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opts.MaxInFlight)
	}
	if setup == SetupJS {
		return s, nil
	}
	// A construction failure after the ledger exists must not leak its
	// periodic-checkpoint goroutine or spill file handles (pinned by
	// TestServerCreateCloseNoLeak).
	defer func() {
		if err != nil && s.ledger != nil {
			s.ledger.Close()
		}
	}()
	var m *wasm.Module
	if fn == Echo {
		m, err = workloads.BuildEcho()
	} else {
		m, err = workloads.BuildResize()
	}
	if err != nil {
		return nil, fmt.Errorf("faas: build function: %w", err)
	}
	if setup == SetupSGXHWInstr || setup == SetupSGXHWIO {
		res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
		if err != nil {
			return nil, fmt.Errorf("faas: instrument: %w", err)
		}
		m = res.Module
		s.counter = res.CounterGlobal
	}
	s.module = m
	if s.modHash, err = core.ModuleHash(m); err != nil {
		return nil, fmt.Errorf("faas: hash function module: %w", err)
	}
	if setup != SetupWASM {
		mode := sgx.ModeSimulation
		if setup >= SetupSGXHW {
			mode = sgx.ModeHardware
		}
		encl, err := sgx.NewEnclave([]byte(core.AEMeasurement().String()), mode, s.costs)
		if err != nil {
			return nil, err
		}
		s.enclave = encl
	}
	if setup == SetupSGXHWInstr || setup == SetupSGXHWIO {
		// The instrumented gateways keep the verifiable usage ledger: one
		// chained record per request, batch-signed at checkpoints and — with
		// ServerOptions.Ledger.Retention configured — bounded in memory,
		// sealed segments spilling to disk or being dropped behind signed
		// checkpoints.
		if s.ledger, err = accounting.NewLedger(s.enclave, opts.Ledger); err != nil {
			return nil, fmt.Errorf("faas: ledger: %w", err)
		}
	}
	var warm []interp.CostModel
	if model := s.requestModel(); model != nil {
		warm = append(warm, model)
	}
	s.compiled, err = interp.Compile(m, interp.CompileOptions{CostModels: warm})
	if err != nil {
		return nil, fmt.Errorf("faas: compile function: %w", err)
	}
	if !opts.RecompilePerRequest {
		s.pool, err = s.compiled.NewPool(interp.Config{CostModel: s.requestModel()},
			interp.PoolConfig{Disabled: opts.PoolDisabled, Prewarm: opts.PoolPrewarm})
		if err != nil {
			return nil, fmt.Errorf("faas: instance pool: %w", err)
		}
	}
	return s, nil
}

// requestModel returns a fresh per-request cost model, or nil when the
// setup charges none. Models are stateful (EPC residency), so each request
// gets its own; all share one cost fingerprint, so segment sums are cached.
func (s *Server) requestModel() interp.CostModel {
	if s.enclave != nil && s.enclave.Mode() == sgx.ModeHardware {
		return sgx.NewEPCModel(sgx.ModeHardware, s.costs, nil)
	}
	return nil
}

// Ledger exposes the gateway's usage ledger (nil for uninstrumented
// setups).
func (s *Server) Ledger() *accounting.Ledger { return s.ledger }

// Enclave exposes the gateway's accounting enclave (nil for SetupWASM and
// SetupJS) — its public key verifies ledger records and checkpoints.
func (s *Server) Enclave() *sgx.Enclave { return s.enclave }

// Close stops the ledger's periodic checkpoint goroutine, if configured,
// and closes its spill files. Close is idempotent.
func (s *Server) Close() {
	if s.ledger != nil {
		s.ledger.Close()
	}
}

// Requests returns the number of requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// IOBytes returns the accounted I/O volume (SetupSGXHWIO only).
func (s *Server) IOBytes() uint64 { return s.ioBytes.Load() }

// Ledger endpoint paths on the gateway.
const (
	ReceiptPath    = "/receipt"
	CheckpointPath = "/checkpoint"
	LedgerPath     = "/ledger"
	CompactPath    = "/compact"
)

// Health endpoint paths on the gateway.
const (
	// HealthPath is the liveness probe: 200 whenever the process can
	// answer, with pool/queue/ledger state in the body.
	HealthPath = "/healthz"
	// ReadyPath is the readiness probe: 503 once the ledger's spill
	// pipeline has degraded (durability lost), 200 otherwise, same body.
	ReadyPath = "/readyz"
)

// Stable machine-readable error codes carried in 4xx/5xx JSON bodies
// ({"error":{"code":...}}). Details are logged server-side, never echoed:
// error strings are not an API, and internal paths do not belong on the
// wire.
const (
	ErrCodeOverloaded       = "overloaded"
	ErrCodeDeadlineExceeded = "deadline_exceeded"
	ErrCodeInvokeFailed     = "invoke_failed"
	ErrCodeCheckpointFailed = "checkpoint_failed"
	ErrCodeCompactFailed    = "compact_failed"
)

// writeError responds with a stable machine-readable error code and logs
// the underlying detail server-side.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	if err != nil {
		log.Printf("faas: %s: %v", code, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":{\"code\":%q}}\n", code)
}

// admit claims an execution slot, waiting on the bounded queue when every
// slot is busy. It returns a release func on success and false when the
// request should be shed (queue full, queue-wait timed out, or the client
// gave up while queued).
func (s *Server) admit(r *http.Request) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if s.opts.MaxQueue <= 0 {
		return nil, false
	}
	if n := s.queued.Add(1); n > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	defer s.queued.Add(-1)
	qt := s.opts.QueueTimeout
	if qt <= 0 {
		qt = defaultQueueTimeout
	}
	timer := time.NewTimer(qt)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-timer.C:
		return nil, false
	case <-r.Context().Done():
		return nil, false
	}
}

// HealthStatus is the /healthz and /readyz response body.
type HealthStatus struct {
	Setup       string        `json:"setup"`
	Function    string        `json:"function"`
	Requests    uint64        `json:"requests"`
	InFlight    int           `json:"in_flight"`
	MaxInFlight int           `json:"max_in_flight"`
	Queued      int64         `json:"queued"`
	MaxQueue    int           `json:"max_queue"`
	Shed        uint64        `json:"shed"`
	Interrupted uint64        `json:"interrupted"`
	Ledger      *LedgerHealth `json:"ledger,omitempty"`
}

// LedgerHealth is the ledger-pipeline slice of HealthStatus (instrumented
// setups only).
type LedgerHealth struct {
	Resident           int    `json:"resident"`
	Spilled            uint64 `json:"spilled"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	Degraded           bool   `json:"degraded"`
	DegradedCause      string `json:"degraded_cause,omitempty"`
}

// Health snapshots the gateway's pool, queue, and ledger-pipeline state.
func (s *Server) Health() HealthStatus {
	h := HealthStatus{
		Setup:       s.setup.String(),
		Function:    s.fn.String(),
		Requests:    s.requests.Load(),
		InFlight:    len(s.sem),
		MaxInFlight: s.opts.MaxInFlight,
		Queued:      s.queued.Load(),
		MaxQueue:    s.opts.MaxQueue,
		Shed:        s.shed.Load(),
		Interrupted: s.interrupted.Load(),
	}
	if s.ledger != nil {
		lh := &LedgerHealth{
			Resident: s.ledger.Resident(),
			Spilled:  s.ledger.SpilledRecords(),
		}
		lh.CheckpointFailures, _ = s.ledger.CheckpointFailures()
		if deg, cause := s.ledger.Degraded(); deg {
			lh.Degraded = true
			if cause != nil {
				lh.DegradedCause = cause.Error()
			}
		}
		h.Ledger = lh
	}
	return h
}

// serveHealth answers the liveness and readiness probes. Readiness fails
// (503) once the spill pipeline has degraded: the gateway still accounts
// correctly but has lost durability, so a balancer should rotate it out.
func (s *Server) serveHealth(w http.ResponseWriter, ready bool) {
	h := s.Health()
	status := http.StatusOK
	if ready && h.Ledger != nil && h.Ledger.Degraded {
		status = http.StatusServiceUnavailable
	}
	b, err := json.Marshal(h)
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInvokeFailed, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
}

// Shed returns how many requests were rejected with 429 by admission
// control.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Interrupted returns how many invocations the deadline cut short.
func (s *Server) Interrupted() uint64 { return s.interrupted.Load() }

// ServeHTTP handles one function invocation. The request body is the
// payload; for resize the image dimensions travel in X-Width/X-Height.
// GET requests on /receipt, /checkpoint and /ledger serve the accounting
// endpoints instead of invoking the function.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case HealthPath, ReadyPath:
		// Probes are never gated by admission control — they must answer
		// precisely when the gateway is saturated or degraded.
		if r.Method == http.MethodGet {
			s.serveHealth(w, r.URL.Path == ReadyPath)
			return
		}
	case ReceiptPath, CheckpointPath, LedgerPath:
		// Read endpoints are GET-only; a POST to these paths falls through
		// to function invocation, as before.
		if r.Method == http.MethodGet {
			switch r.URL.Path {
			case ReceiptPath:
				s.serveReceipt(w, r)
			case CheckpointPath:
				s.serveCheckpoint(w)
			case LedgerPath:
				s.serveLedger(w, r)
			}
			return
		}
	case CompactPath:
		// Compaction mutates ledger state (signs a checkpoint, seals and
		// spills segments, advances the truncation anchor): POST only, so
		// crawlers and monitoring probes issuing GETs can never trigger it.
		if r.Method != http.MethodPost {
			http.Error(w, "compaction is POST-only", http.StatusMethodNotAllowed)
			return
		}
		s.serveCompact(w)
		return
	}
	// Admission control gates only the invocation path, before the body is
	// read — a shed request costs the gateway next to nothing.
	release, ok := s.admit(r)
	if !ok {
		s.shed.Add(1)
		// Retry-After steers well-behaved clients (and GenerateLoad's
		// backoff) away while the pool is saturated.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, ErrCodeOverloaded, nil)
		return
	}
	defer release()

	body, err := io.ReadAll(r.Body)
	if err != nil || len(body) > workloads.MaxPayload {
		http.Error(w, "bad payload", http.StatusBadRequest)
		return
	}
	width, _ := strconv.Atoi(r.Header.Get("X-Width"))
	height, _ := strconv.Atoi(r.Header.Get("X-Height"))

	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}

	var out []byte
	var counter uint64
	var rcpt *accounting.Receipt
	switch s.setup {
	case SetupJS:
		out = s.serveJS(body, width, height)
	default:
		out, counter, rcpt, err = s.serveWasm(ctx, body, width, height)
	}
	if counter > 0 {
		w.Header().Set("X-Weighted-Instructions", strconv.FormatUint(counter, 10))
	}
	if rcpt != nil {
		// The response's ledger receipt: where the request's usage record
		// landed and the shard chain head it produced.
		w.Header().Set("X-Acct-Shard", strconv.FormatUint(uint64(rcpt.Shard), 10))
		w.Header().Set("X-Acct-Sequence", strconv.FormatUint(rcpt.Sequence, 10))
		// hex.EncodeToString, not Sprintf("%x", ...): Sprintf reflects over
		// the array on every response, an allocation-heavy detour on the
		// hot path for a fixed 32-byte value.
		w.Header().Set("X-Acct-Chain", hex.EncodeToString(rcpt.ChainHead[:]))
	}
	if err != nil {
		if errors.Is(err, interp.ErrInterrupted) {
			// The deadline cut the run short at a segment boundary. The
			// work actually executed is already charged — the receipt
			// headers above point at the partial run's ledger record.
			s.interrupted.Add(1)
			writeError(w, http.StatusGatewayTimeout, ErrCodeDeadlineExceeded, err)
			return
		}
		writeError(w, http.StatusInternalServerError, ErrCodeInvokeFailed, err)
		return
	}
	s.requests.Add(1)
	if s.setup == SetupSGXHWIO {
		s.ioBytes.Add(uint64(len(body) + len(out)))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// serveReceipt returns the ledger record named by ?shard=S&seq=N.
func (s *Server) serveReceipt(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "no ledger in this setup", http.StatusNotFound)
		return
	}
	shard, err1 := strconv.ParseUint(r.URL.Query().Get("shard"), 10, 32)
	seq, err2 := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "want ?shard=S&seq=N", http.StatusBadRequest)
		return
	}
	rec, ok := s.ledger.Record(uint32(shard), seq)
	if !ok {
		http.Error(w, "no such record", http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

// serveCheckpoint batch-signs the ledger's current state on request (the
// paper's "upon request" log) and returns the signed checkpoint.
func (s *Server) serveCheckpoint(w http.ResponseWriter) {
	if s.ledger == nil {
		http.Error(w, "no ledger in this setup", http.StatusNotFound)
		return
	}
	sc, err := s.ledger.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeCheckpointFailed, err)
		return
	}
	writeJSON(w, sc)
}

// serveLedger streams the offline-verifiable dump (acctee-verify input)
// straight to the response in O(segment) memory — the gateway never
// materialises the record array, however long it has been running.
// ?truncated=1 anchors the dump at the last compaction checkpoint: a
// non-zero starting sequence per shard, heads carried forward from the
// anchor, verifiable against the anchor's signature alone. ?bin=1 selects
// the binary v3 dump container (~5x smaller than JSON for record-heavy
// dumps); acctee-verify autodetects either.
func (s *Server) serveLedger(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "no ledger in this setup", http.StatusNotFound)
		return
	}
	opts := accounting.DumpOptions{
		Truncated: r.URL.Query().Get("truncated") == "1",
		Binary:    r.URL.Query().Get("bin") == "1",
	}
	if opts.Binary {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	if err := s.ledger.WriteDump(w, opts); err != nil {
		// Headers are gone; the truncated body will fail to parse, which
		// is the correct failure mode for a verifier.
		return
	}
}

// serveCompact runs one bounded-retention compaction on request: sign a
// checkpoint covering every lane, seal what it covers (spill or drop), and
// report what was released. Operators hit it before scraping a truncated
// dump, or to bound memory on gateways without an automatic retention
// trigger.
func (s *Server) serveCompact(w http.ResponseWriter) {
	if s.ledger == nil {
		http.Error(w, "no ledger in this setup", http.StatusNotFound)
		return
	}
	res, err := s.ledger.Compact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeCompactFailed, err)
		return
	}
	writeJSON(w, res)
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (s *Server) serveWasm(ctx context.Context, body []byte, width, height int) ([]byte, uint64, *accounting.Receipt, error) {
	cfg := interp.Config{CostModel: s.requestModel()}
	// Deadline propagation: a context that can expire arms a cooperative
	// interrupt flag the engines poll at segment-leader charge points, so
	// an expired deadline aborts the run with exactly the executed work
	// accounted (and charged to the ledger below).
	if done := ctx.Done(); done != nil {
		intr := new(atomic.Bool)
		if ctx.Err() != nil {
			intr.Store(true)
		} else {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					intr.Store(true)
				case <-stop:
				}
			}()
		}
		cfg.Interrupt = intr
	}
	var (
		vm  *interp.VM
		err error
	)
	if s.opts.RecompilePerRequest {
		vm, err = interp.Instantiate(s.module, cfg)
	} else {
		vm, err = s.pool.Get(cfg)
	}
	if err != nil {
		return nil, 0, nil, fmt.Errorf("faas: instantiate: %w", err)
	}
	if !s.opts.RecompilePerRequest {
		defer s.pool.Put(vm)
	}
	if s.enclave != nil {
		// request enters the enclave, response leaves it
		burn(s.enclave.Transition())
		defer burn(s.enclave.Transition())
	}
	in, err := vm.MemoryDirty(workloads.InBase, uint32(len(body)))
	if err != nil {
		return nil, 0, nil, fmt.Errorf("faas: payload: %w", err)
	}
	copy(in, body)
	var res []uint64
	if s.fn == Echo {
		res, err = vm.InvokeExport("run", uint64(len(body)))
	} else {
		res, err = vm.InvokeExport("run", uint64(width), uint64(height))
	}
	runErr := err
	interruptedRun := errors.Is(runErr, interp.ErrInterrupted)
	if runErr != nil && !interruptedRun {
		return nil, 0, nil, fmt.Errorf("faas: run: %w", runErr)
	}
	var out []byte
	if runErr == nil {
		n := uint32(res[0])
		view, err := vm.MemoryView(workloads.OutBase, n)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("faas: response: %w", err)
		}
		out = make([]byte, n)
		copy(out, view)
	}
	var counter uint64
	var rcpt *accounting.Receipt
	if s.setup == SetupSGXHWInstr || s.setup == SetupSGXHWIO {
		counter, _ = vm.Global(s.counter)
		// Chain the request's usage record onto the ledger. No signature
		// is paid here unless eager signing is configured — checkpoints
		// vouch for the record in batch.
		log := accounting.UsageLog{
			WorkloadHash:         s.modHash,
			WeightedInstructions: counter,
			PeakMemoryBytes:      uint64(vm.MemorySize()),
			SimulatedCycles:      vm.Cost(),
			Policy:               accounting.PeakMemory,
		}
		if s.setup == SetupSGXHWIO {
			log.IOBytesIn = uint64(len(body))
			log.IOBytesOut = uint64(len(out))
		}
		receipt, _, err := s.ledger.Append(log)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("faas: ledger: %w", err)
		}
		rcpt = &receipt
	}
	// EPC paging cycles burn wall-clock on real hardware.
	if s.enclave != nil && s.enclave.Mode() == sgx.ModeHardware {
		burn(vm.Cost())
	}
	if interruptedRun {
		// The partial run's record is appended above — the work done up to
		// the interrupt is charged; the error (wrapping ErrInterrupted)
		// travels up with the receipt so the 504 can carry it.
		return nil, counter, rcpt, fmt.Errorf("faas: run: %w", runErr)
	}
	return out, counter, rcpt, nil
}

func (s *Server) serveJS(body []byte, width, height int) []byte {
	spin(JSDispatchCost)
	if s.fn == Echo {
		return workloads.JSEcho(body)
	}
	return workloads.JSResize(body, width, height)
}

// burn converts simulated cycles into wall-clock time at an assumed
// 3 GHz so hardware-mode penalties show up in throughput, as on real SGX.
func burn(cycles uint64) {
	if cycles == 0 {
		return
	}
	spin(time.Duration(cycles) * time.Nanosecond / 3)
}

// spin busy-waits (enclave transitions and fork/exec burn CPU, they do not
// yield it).
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// ---------------------------------------------------------------------------
// load generator (h2load stand-in)

// LoadResult is one load-generation run's outcome. Failed requests are
// never silently absorbed into the throughput figure: Requests and
// ReqPerSec count successful (2xx) responses only, and ByStatus breaks the
// rest down so a run full of 500s is visible in the bench numbers.
type LoadResult struct {
	// Requests counts successfully completed (2xx) requests.
	Requests int
	Duration time.Duration
	// Errors counts transport failures plus non-2xx responses.
	Errors int
	// ByStatus counts responses per HTTP status code; transport errors
	// (no response at all) are recorded under status 0.
	ByStatus map[int]int
	// WeightedInstructions sums the X-Weighted-Instructions header over
	// successful responses. Non-2xx responses never contribute, whether or
	// not the server attached the header before failing.
	WeightedInstructions uint64
	// Shed counts 429/503 responses observed, including ones a retry
	// later turned into a success — overload visible even when the
	// backoff absorbs it.
	Shed int
	// Retried counts retry attempts issued after a shed response.
	Retried int
	// ReqPerSec is successful-request throughput.
	ReqPerSec float64
	// LatencyP50/P95/P99 are per-request latency percentiles over every
	// completed request (including failures — a tail regression that only
	// shows on errors must not hide), measured from request creation to
	// body drain.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
}

// percentile returns the p-quantile of a sorted latency sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// LoadOptions tune GenerateLoadWithOptions beyond the classic
// clients/total shape.
type LoadOptions struct {
	Clients int
	Total   int
	Payload []byte
	Width   int
	Height  int
	// Timeout bounds each request attempt end to end (default 10s): a
	// wedged gateway costs the client one timeout, not forever.
	Timeout time.Duration
	// Retries caps retry attempts per request after a 429/503 response
	// (default 2; negative = no retries). Other statuses and transport
	// errors are never retried — they are results, not backpressure.
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between retries (default 2ms, doubled per attempt, ±50% jitter).
	RetryBackoff time.Duration
}

// GenerateLoad drives the URL with `clients` concurrent connections until
// `total` requests have completed, mirroring the paper's h2load usage
// (10 concurrent clients). It is GenerateLoadWithOptions with defaults.
func GenerateLoad(url string, clients, total int, payload []byte, width, height int) LoadResult {
	return GenerateLoadWithOptions(url, LoadOptions{
		Clients: clients, Total: total, Payload: payload,
		Width: width, Height: height,
	})
}

// GenerateLoadWithOptions drives the URL with opts.Clients concurrent
// connections until opts.Total requests have completed. Each request gets
// a deadline, and 429/503 responses (the gateway shedding load) are
// retried with jittered exponential backoff up to opts.Retries times — a
// well-behaved client backs off when the server asks it to. Per-request
// latency is measured from first attempt to final completion, backoff
// included: that is the latency an end user of a retrying client sees.
//
// The clients share one Transport sized to keep an idle connection per
// client: the default Transport caps idle connections per host at 2, so
// with 10+ clients most requests would tear down and re-dial their
// connection — measuring TCP setup, not the gateway.
func GenerateLoadWithOptions(url string, opts LoadOptions) LoadResult {
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 2 * time.Millisecond
	}
	transport := &http.Transport{
		MaxIdleConns:        opts.Clients + 4,
		MaxIdleConnsPerHost: opts.Clients + 4,
	}
	defer transport.CloseIdleConnections()
	var (
		mu        sync.Mutex
		res       = LoadResult{ByStatus: make(map[int]int)}
		latencies = make([]time.Duration, 0, opts.Total)
		wg        sync.WaitGroup
		client    = &http.Client{Transport: transport}
	)
	record := func(status int, weighted uint64, took time.Duration, shed, retried int) {
		mu.Lock()
		defer mu.Unlock()
		res.ByStatus[status]++
		res.Shed += shed
		res.Retried += retried
		latencies = append(latencies, took)
		if status >= 200 && status < 300 {
			res.Requests++
			res.WeightedInstructions += weighted
		} else {
			res.Errors++
		}
	}
	// attempt issues one HTTP request and reports its status (0 =
	// transport error) plus the accounting header on success.
	attempt := func() (status int, weighted uint64) {
		ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytesReader(opts.Payload))
		if err != nil {
			return 0, 0
		}
		req.Header.Set("X-Width", strconv.Itoa(opts.Width))
		req.Header.Set("X-Height", strconv.Itoa(opts.Height))
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0
		}
		// Drain for connection reuse, but only count the body of a
		// successful response; the accounting header is parsed only
		// on success, so a 500 with or without it lands identically
		// in ByStatus/Errors.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			weighted, _ = strconv.ParseUint(resp.Header.Get("X-Weighted-Instructions"), 10, 64)
		}
		return resp.StatusCode, weighted
	}
	start := time.Now()
	next := make(chan struct{}, opts.Total)
	for i := 0; i < opts.Total; i++ {
		next <- struct{}{}
	}
	close(next)
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				t0 := time.Now()
				var shed, retried int
				status, weighted := attempt()
				for status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
					shed++
					if retried >= opts.Retries {
						break
					}
					retried++
					// Jittered exponential backoff (±50%) so a shed burst
					// does not come back as a synchronized retry burst.
					d := opts.RetryBackoff << (retried - 1)
					d = d/2 + time.Duration(rand.Int63n(int64(d)))
					time.Sleep(d)
					status, weighted = attempt()
				}
				record(status, weighted, time.Since(t0), shed, retried)
			}
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.ReqPerSec = float64(res.Requests) / res.Duration.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.LatencyP50 = percentile(latencies, 0.50)
	res.LatencyP95 = percentile(latencies, 0.95)
	res.LatencyP99 = percentile(latencies, 0.99)
	return res
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
