// Package faas implements the serverless evaluation infrastructure of the
// paper (§5.3, Fig. 9): an HTTP gateway that instantiates one WebAssembly
// sandbox per request ("To maintain isolation between the functions, the
// HTTP Server instantiates a new WebAssembly module for every incoming
// request"), six deployment setups (WASM, WASM-SGX SIM, WASM-SGX HW, HW
// +instrumentation, HW +I/O accounting, and the JavaScript/OpenFaaS
// baseline), and a concurrent load generator standing in for h2load.
package faas

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	"acctee/internal/workloads"
)

// Function selects the deployed FaaS function.
type Function int

// Deployed functions.
const (
	Echo Function = iota + 1
	Resize
)

// String names the function.
func (f Function) String() string {
	if f == Echo {
		return "echo"
	}
	return "resize"
}

// Setup is one of the paper's six deployment configurations.
type Setup int

// Deployment setups of Fig. 9.
const (
	SetupWASM Setup = iota + 1
	SetupSGXSim
	SetupSGXHW
	SetupSGXHWInstr
	SetupSGXHWIO
	SetupJS
)

// String names the setup as in Fig. 9.
func (s Setup) String() string {
	switch s {
	case SetupWASM:
		return "WASM"
	case SetupSGXSim:
		return "WASM-SGX SIM"
	case SetupSGXHW:
		return "WASM-SGX HW"
	case SetupSGXHWInstr:
		return "WASM-SGX HW instr."
	case SetupSGXHWIO:
		return "WASM-SGX HW I/O"
	case SetupJS:
		return "JS"
	}
	return "setup?"
}

// JSDispatchCost models the OpenFaaS classic-watchdog fork/exec plus Docker
// network hop the paper's JS baseline pays on every request (DESIGN.md §1:
// modelled, since Docker is unavailable here). It is busy-waited, not
// slept, because the watchdog burns CPU on fork+exec.
var JSDispatchCost = 12 * time.Millisecond

// Server is the FaaS gateway for one function in one setup.
type Server struct {
	fn       Function
	setup    Setup
	module   *wasm.Module // nil for SetupJS
	counter  uint32       // instrumented counter global (instr setups)
	enclave  *sgx.Enclave // nil for non-SGX setups
	costs    sgx.CostParams
	mu       sync.Mutex
	requests uint64
	ioBytes  uint64
}

// NewServer builds (and, where applicable, instruments) the function module
// once — the paper's cached-instrumentation deployment — and returns the
// gateway.
func NewServer(fn Function, setup Setup) (*Server, error) {
	s := &Server{fn: fn, setup: setup, costs: sgx.DefaultCostParams()}
	if setup == SetupJS {
		return s, nil
	}
	var (
		m   *wasm.Module
		err error
	)
	if fn == Echo {
		m, err = workloads.BuildEcho()
	} else {
		m, err = workloads.BuildResize()
	}
	if err != nil {
		return nil, fmt.Errorf("faas: build function: %w", err)
	}
	if setup == SetupSGXHWInstr || setup == SetupSGXHWIO {
		res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
		if err != nil {
			return nil, fmt.Errorf("faas: instrument: %w", err)
		}
		m = res.Module
		s.counter = res.CounterGlobal
	}
	s.module = m
	if setup != SetupWASM {
		mode := sgx.ModeSimulation
		if setup >= SetupSGXHW {
			mode = sgx.ModeHardware
		}
		encl, err := sgx.NewEnclave([]byte(core.AEMeasurement().String()), mode, s.costs)
		if err != nil {
			return nil, err
		}
		s.enclave = encl
	}
	return s, nil
}

// Requests returns the number of requests served.
func (s *Server) Requests() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// IOBytes returns the accounted I/O volume (SetupSGXHWIO only).
func (s *Server) IOBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ioBytes
}

// ServeHTTP handles one function invocation. The request body is the
// payload; for resize the image dimensions travel in X-Width/X-Height.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil || len(body) > workloads.MaxPayload {
		http.Error(w, "bad payload", http.StatusBadRequest)
		return
	}
	width, _ := strconv.Atoi(r.Header.Get("X-Width"))
	height, _ := strconv.Atoi(r.Header.Get("X-Height"))

	var out []byte
	var counter uint64
	switch s.setup {
	case SetupJS:
		out = s.serveJS(body, width, height)
	default:
		out, counter, err = s.serveWasm(body, width, height)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.mu.Lock()
	s.requests++
	if s.setup == SetupSGXHWIO {
		s.ioBytes += uint64(len(body) + len(out))
	}
	s.mu.Unlock()
	if counter > 0 {
		w.Header().Set("X-Weighted-Instructions", strconv.FormatUint(counter, 10))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

func (s *Server) serveWasm(body []byte, width, height int) ([]byte, uint64, error) {
	var model interp.CostModel
	if s.enclave != nil && s.enclave.Mode() == sgx.ModeHardware {
		model = sgx.NewEPCModel(sgx.ModeHardware, s.costs, nil)
	}
	vm, err := interp.Instantiate(s.module, interp.Config{CostModel: model})
	if err != nil {
		return nil, 0, fmt.Errorf("faas: instantiate: %w", err)
	}
	if s.enclave != nil {
		// request enters the enclave, response leaves it
		burn(s.enclave.Transition())
		defer burn(s.enclave.Transition())
	}
	copy(vm.Memory()[workloads.InBase:], body)
	var res []uint64
	if s.fn == Echo {
		res, err = vm.InvokeExport("run", uint64(len(body)))
	} else {
		res, err = vm.InvokeExport("run", uint64(width), uint64(height))
	}
	if err != nil {
		return nil, 0, fmt.Errorf("faas: run: %w", err)
	}
	n := int(uint32(res[0]))
	out := make([]byte, n)
	copy(out, vm.Memory()[workloads.OutBase:])
	var counter uint64
	if s.setup == SetupSGXHWInstr || s.setup == SetupSGXHWIO {
		counter, _ = vm.Global(s.counter)
	}
	// EPC paging cycles burn wall-clock on real hardware.
	if s.enclave != nil && s.enclave.Mode() == sgx.ModeHardware {
		burn(vm.Cost())
	}
	return out, counter, nil
}

func (s *Server) serveJS(body []byte, width, height int) []byte {
	spin(JSDispatchCost)
	if s.fn == Echo {
		return workloads.JSEcho(body)
	}
	return workloads.JSResize(body, width, height)
}

// burn converts simulated cycles into wall-clock time at an assumed
// 3 GHz so hardware-mode penalties show up in throughput, as on real SGX.
func burn(cycles uint64) {
	if cycles == 0 {
		return
	}
	spin(time.Duration(cycles) * time.Nanosecond / 3)
}

// spin busy-waits (enclave transitions and fork/exec burn CPU, they do not
// yield it).
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// ---------------------------------------------------------------------------
// load generator (h2load stand-in)

// LoadResult is one load-generation run's outcome.
type LoadResult struct {
	Requests  int
	Duration  time.Duration
	Errors    int
	ReqPerSec float64
}

// GenerateLoad drives the URL with `clients` concurrent connections until
// `total` requests have completed, mirroring the paper's h2load usage
// (10 concurrent clients).
func GenerateLoad(url string, clients, total int, payload []byte, width, height int) LoadResult {
	var (
		mu     sync.Mutex
		done   int
		errs   int
		wg     sync.WaitGroup
		client = &http.Client{}
	)
	start := time.Now()
	next := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		next <- struct{}{}
	}
	close(next)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				req, err := http.NewRequest(http.MethodPost, url, bytesReader(payload))
				if err != nil {
					recordErr(&mu, &errs)
					continue
				}
				req.Header.Set("X-Width", strconv.Itoa(width))
				req.Header.Set("X-Height", strconv.Itoa(height))
				resp, err := client.Do(req)
				if err != nil {
					recordErr(&mu, &errs)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				mu.Lock()
				if resp.StatusCode != http.StatusOK {
					errs++
				} else {
					done++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)
	return LoadResult{
		Requests:  done,
		Duration:  dur,
		Errors:    errs,
		ReqPerSec: float64(done) / dur.Seconds(),
	}
}

func recordErr(mu *sync.Mutex, errs *int) {
	mu.Lock()
	*errs++
	mu.Unlock()
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
