package faas_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/faas"
	"acctee/internal/fault"
	"acctee/internal/workloads"
)

func post(t *testing.T, url string, payload []byte, w, h int) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Width", strconv.Itoa(w))
	req.Header.Set("X-Height", strconv.Itoa(h))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	return resp, body
}

func TestEchoAllSetups(t *testing.T) {
	payload := workloads.TestImage(16, 16)
	for _, setup := range []faas.Setup{
		faas.SetupWASM, faas.SetupSGXSim, faas.SetupSGXHW,
		faas.SetupSGXHWInstr, faas.SetupSGXHWIO, faas.SetupJS,
	} {
		srv, err := faas.NewServer(faas.Echo, setup)
		if err != nil {
			t.Fatalf("%v: %v", setup, err)
		}
		ts := httptest.NewServer(srv)
		resp, body := post(t, ts.URL, payload, 0, 0)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%v: status %d", setup, resp.StatusCode)
			continue
		}
		if !bytes.Equal(body, payload) {
			t.Errorf("%v: echo mangled payload", setup)
		}
		if setup == faas.SetupSGXHWInstr || setup == faas.SetupSGXHWIO {
			if resp.Header.Get("X-Weighted-Instructions") == "" {
				t.Errorf("%v: missing accounting header", setup)
			}
		}
		if setup == faas.SetupSGXHWIO && srv.IOBytes() == 0 {
			t.Errorf("%v: no I/O accounted", setup)
		}
	}
}

func TestResizeOutputsMatchAcrossSetups(t *testing.T) {
	const size = 64
	img := workloads.TestImage(size, size)
	want := workloads.NativeResize(img, size, size)
	for _, setup := range []faas.Setup{faas.SetupWASM, faas.SetupSGXHWInstr, faas.SetupJS} {
		srv, err := faas.NewServer(faas.Resize, setup)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		resp, body := post(t, ts.URL, img, size, size)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d", setup, resp.StatusCode)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%v: resize output differs from native reference", setup)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	srv, err := faas.NewServer(faas.Echo, faas.SetupWASM)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	big := make([]byte, workloads.MaxPayload+1)
	resp, _ := post(t, ts.URL, big, 0, 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

func TestGenerateLoad(t *testing.T) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	srv, err := faas.NewServer(faas.Echo, faas.SetupJS)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	res := faas.GenerateLoad(ts.URL, 4, 12, []byte("ping"), 0, 0)
	if res.Requests != 12 || res.Errors != 0 {
		t.Errorf("load result %+v", res)
	}
	if srv.Requests() != 12 {
		t.Errorf("server saw %d requests, want 12", srv.Requests())
	}
	if res.ReqPerSec <= 0 {
		t.Errorf("nonsensical throughput %v", res.ReqPerSec)
	}
}

// TestGenerateLoadSurfacesFailures pins the satellite fix: failed-but-
// responded requests must not be silently absorbed — they are excluded from
// Requests/ReqPerSec, counted in Errors, broken down in ByStatus, and their
// X-Weighted-Instructions header (present or missing) never contributes.
func TestGenerateLoadSurfacesFailures(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		i := n.Add(1)
		switch {
		case i%3 == 0:
			// failure that still attaches the accounting header: it must
			// be treated exactly like one that does not.
			w.Header().Set("X-Weighted-Instructions", "12345")
			http.Error(w, "boom", http.StatusInternalServerError)
		case i%5 == 0:
			http.Error(w, "busy", http.StatusServiceUnavailable)
		default:
			w.Header().Set("X-Weighted-Instructions", "7")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok"))
		}
	}))
	defer ts.Close()

	// Retries are disabled: this test pins the per-status breakdown, and a
	// retried 503 would (correctly) turn into a 200 and blur it. The shed
	// counter must still see every 503.
	const total = 30
	res := faas.GenerateLoadWithOptions(ts.URL, faas.LoadOptions{
		Clients: 3, Total: total, Payload: []byte("x"), Retries: -1,
	})

	want500 := total / 3          // every 3rd
	want503 := total/5 - total/15 // every 5th, minus overlaps with 3rd
	wantOK := total - want500 - want503
	if res.Requests != wantOK {
		t.Errorf("Requests = %d, want %d", res.Requests, wantOK)
	}
	if res.Errors != want500+want503 {
		t.Errorf("Errors = %d, want %d", res.Errors, want500+want503)
	}
	if res.ByStatus[http.StatusOK] != wantOK ||
		res.ByStatus[http.StatusInternalServerError] != want500 ||
		res.ByStatus[http.StatusServiceUnavailable] != want503 {
		t.Errorf("ByStatus = %v, want 200:%d 500:%d 503:%d", res.ByStatus, wantOK, want500, want503)
	}
	if res.Requests+res.Errors != total {
		t.Errorf("accounted %d requests, want %d", res.Requests+res.Errors, total)
	}
	// Only successful responses contribute accounting: 7 each, never the
	// 12345 attached to the 500s.
	if want := uint64(wantOK * 7); res.WeightedInstructions != want {
		t.Errorf("WeightedInstructions = %d, want %d", res.WeightedInstructions, want)
	}
	if res.Shed != want503 || res.Retried != 0 {
		t.Errorf("Shed/Retried = %d/%d, want %d/0 (retries disabled)", res.Shed, res.Retried, want503)
	}
}

// TestReceiptsAndLedgerEndpoints: every instrumented response carries a
// ledger receipt; /receipt serves the named record, /checkpoint a freshly
// batch-signed checkpoint covering all served requests, /ledger an
// offline-verifiable dump.
func TestReceiptsAndLedgerEndpoints(t *testing.T) {
	srv, err := faas.NewServer(faas.Echo, faas.SetupSGXHWInstr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	payload := []byte("hello ledger")
	const requests = 5
	type rcpt struct{ shard, seq uint64 }
	seen := map[rcpt]bool{}
	for i := 0; i < requests; i++ {
		resp, _ := post(t, ts.URL, payload, 0, 0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		shard, err1 := strconv.ParseUint(resp.Header.Get("X-Acct-Shard"), 10, 32)
		seq, err2 := strconv.ParseUint(resp.Header.Get("X-Acct-Sequence"), 10, 64)
		head := resp.Header.Get("X-Acct-Chain")
		if err1 != nil || err2 != nil || len(head) != 64 {
			t.Fatalf("bad receipt headers: shard=%q seq=%q chain=%q",
				resp.Header.Get("X-Acct-Shard"), resp.Header.Get("X-Acct-Sequence"), head)
		}
		if seen[rcpt{shard, seq}] {
			t.Fatalf("duplicate receipt %d/%d", shard, seq)
		}
		seen[rcpt{shard, seq}] = true

		// The receipt resolves to a record whose chain head matches.
		rr, err := http.Get(fmt.Sprintf("%s%s?shard=%d&seq=%d", ts.URL, faas.ReceiptPath, shard, seq))
		if err != nil {
			t.Fatal(err)
		}
		var rec accounting.Record
		if err := json.NewDecoder(rr.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		_ = rr.Body.Close()
		if got := fmt.Sprintf("%x", rec.Hash); got != head {
			t.Fatalf("record hash %s != receipt chain head %s", got, head)
		}
		if rec.Log.WeightedInstructions == 0 {
			t.Error("record carries no weighted instructions")
		}
	}

	// /checkpoint covers every request with one verifiable signature.
	cr, err := http.Get(ts.URL + faas.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	var sc accounting.SignedCheckpoint
	if err := json.NewDecoder(cr.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	_ = cr.Body.Close()
	if got := sc.Checkpoint.Covered(); got != requests {
		t.Errorf("checkpoint covers %d records, want %d", got, requests)
	}
	if err := accounting.VerifyCheckpointSig(sc, srv.Enclave().PublicKey(), srv.Enclave().Measurement()); err != nil {
		t.Errorf("checkpoint signature: %v", err)
	}

	// /ledger replays offline (the acctee-verify flow over HTTP).
	lr, err := http.Get(ts.URL + faas.LedgerPath)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(lr.Body)
	_ = lr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	vr, err := accounting.VerifyReader(bytes.NewReader(body),
		accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
	if err != nil {
		t.Fatalf("offline verification of /ledger dump: %v", err)
	}
	if vr.Records != requests || vr.CoveredRecords != requests {
		t.Errorf("verification result %+v", vr)
	}

	// Missing records and bad params are 404/400.
	if r, _ := http.Get(ts.URL + faas.ReceiptPath + "?shard=0&seq=999999"); r.StatusCode != http.StatusNotFound {
		t.Errorf("missing record: status %d", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + faas.ReceiptPath + "?shard=x"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad params: status %d", r.StatusCode)
	}
}

// TestLedgerEndpointsAbsentWithoutInstrumentation: uninstrumented setups
// serve no ledger.
func TestLedgerEndpointsAbsentWithoutInstrumentation(t *testing.T) {
	srv, err := faas.NewServer(faas.Echo, faas.SetupWASM)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{faas.ReceiptPath + "?shard=0&seq=0", faas.CheckpointPath, faas.LedgerPath} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, r.StatusCode)
		}
	}
	if srv.Ledger() != nil {
		t.Error("uninstrumented setup grew a ledger")
	}
}

// TestEagerGatewayRecordsSigned: with eager signing every served record
// carries its own verifiable signature.
func TestEagerGatewayRecordsSigned(t *testing.T) {
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr,
		faas.ServerOptions{Ledger: accounting.LedgerOptions{EagerSign: true, Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 4; i++ {
		if resp, _ := post(t, ts.URL, []byte("x"), 0, 0); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	dump, err := srv.Ledger().Dump()
	if err != nil {
		t.Fatal(err)
	}
	vr, err := accounting.VerifyDump(dump, accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	if vr.EagerSignatures != 4 {
		t.Errorf("verified %d eager signatures, want 4", vr.EagerSignatures)
	}
}

// TestGenerateLoadLatencyPercentiles pins the satellite: per-request
// latency percentiles are reported and ordered.
func TestGenerateLoadLatencyPercentiles(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		time.Sleep(200 * time.Microsecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	res := faas.GenerateLoad(ts.URL, 2, 20, []byte("x"), 0, 0)
	if res.LatencyP50 <= 0 {
		t.Fatalf("p50 = %v", res.LatencyP50)
	}
	if res.LatencyP95 < res.LatencyP50 || res.LatencyP99 < res.LatencyP95 {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if res.LatencyP50 < 200*time.Microsecond {
		t.Errorf("p50 %v below the handler's sleep", res.LatencyP50)
	}
}

// TestPooledServingMatchesRecompile: the pooled gateway must produce
// byte-identical responses and counters to the recompile-per-request
// baseline, across repeated requests on recycled instances.
func TestPooledServingMatchesRecompile(t *testing.T) {
	const size = 32
	img := workloads.TestImage(size, size)
	serve := func(opts faas.ServerOptions) ([]byte, string) {
		srv, err := faas.NewServerWithOptions(faas.Resize, faas.SetupSGXHWInstr, opts)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		var body []byte
		var counter string
		for i := 0; i < 3; i++ { // repeat so the pooled path reuses instances
			resp, b := post(t, ts.URL, img, size, size)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			body, counter = b, resp.Header.Get("X-Weighted-Instructions")
		}
		return body, counter
	}
	baseBody, baseCounter := serve(faas.ServerOptions{RecompilePerRequest: true})
	poolBody, poolCounter := serve(faas.ServerOptions{PoolPrewarm: 1})
	if !bytes.Equal(baseBody, poolBody) {
		t.Error("pooled response body differs from recompile baseline")
	}
	if baseCounter == "" || baseCounter != poolCounter {
		t.Errorf("pooled counter %q differs from baseline %q", poolCounter, baseCounter)
	}
}

// TestServerCreateCloseNoLeak pins the gateway lifecycle: creating,
// exercising, and closing servers repeatedly — periodic checkpointing and
// spill files configured, plus the robustness paths (shedding under a
// full pool, deadline interrupts, a disk fault that degrades the store,
// and a transient fault the retry loop un-wedges) — must leak neither the
// checkpoint goroutine, nor its ticker, nor interrupt watchers, nor
// retrying spill writers. The pin is a goroutine-count settle: after the
// loop the process must return to its baseline.
func TestServerCreateCloseNoLeak(t *testing.T) {
	settle := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 100; i++ {
			time.Sleep(2 * time.Millisecond)
			if g := runtime.NumGoroutine(); g <= n {
				n = g
			}
		}
		return n
	}
	ledgerOpts := func(inj *fault.Injector) accounting.LedgerOptions {
		return accounting.LedgerOptions{
			Shards:             2,
			CheckpointInterval: time.Millisecond,
			Retention: accounting.RetentionPolicy{
				MaxResidentRecords: 4,
				SegmentRecords:     2,
				SpillDir:           filepath.Join(t.TempDir(), "spill"),
			},
			Faults: inj,
		}
	}
	invoke := func(t *testing.T, srv *faas.Server, wantStatus int) int {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader([]byte("ping")))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if wantStatus != 0 && w.Code != wantStatus {
			t.Fatalf("status %d, want %d", w.Code, wantStatus)
		}
		return w.Code
	}
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"plain", func(t *testing.T) {
			srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
				Ledger: ledgerOpts(nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			invoke(t, srv, http.StatusOK)
			srv.Close()
			srv.Close() // Close is idempotent
		}},
		{"shed", func(t *testing.T) {
			srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
				MaxInFlight: 1,
				Ledger:      ledgerOpts(nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Concurrent invocations against one slot: every response is a
			// 200 or a clean 429, and whatever mix lands, nothing may leak.
			var wg sync.WaitGroup
			for j := 0; j < 8; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if code := invoke(t, srv, 0); code != http.StatusOK && code != http.StatusTooManyRequests {
						t.Errorf("status %d, want 200 or 429", code)
					}
				}()
			}
			wg.Wait()
			srv.Close()
		}},
		{"timeout", func(t *testing.T) {
			srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
				RequestTimeout: time.Nanosecond, // every run interrupts at entry
				Ledger:         ledgerOpts(nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 4; j++ {
				invoke(t, srv, http.StatusGatewayTimeout)
			}
			srv.Close()
		}},
		{"degrade", func(t *testing.T) {
			inj := fault.New()
			srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
				Ledger: ledgerOpts(inj),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Permanent disk fault: retention-triggered compactions keep
			// failing until the store degrades; requests keep succeeding
			// and Close must still wind everything down.
			inj.FailWrites(1, 1<<40, nil)
			for j := 0; j < 24; j++ {
				invoke(t, srv, http.StatusOK)
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				if deg, _ := srv.Ledger().Degraded(); deg {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("store never degraded")
				}
				time.Sleep(time.Millisecond)
			}
			invoke(t, srv, http.StatusOK)
			srv.Close()
		}},
		{"unwedge", func(t *testing.T) {
			inj := fault.New()
			srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
				Ledger: ledgerOpts(inj),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Transient fault: the first two batch writes fail, the retry
			// loop rides it out, and the store must NOT be degraded after.
			inj.FailWrites(1, 2, nil)
			for j := 0; j < 24; j++ {
				invoke(t, srv, http.StatusOK)
			}
			srv.Ledger().Anchor()
			if deg, derr := srv.Ledger().Degraded(); deg {
				t.Fatalf("transient fault degraded the store: %v", derr)
			}
			srv.Close()
		}},
	}
	base := settle()
	for i := 0; i < 3; i++ {
		for _, sc := range scenarios {
			sc.run(t)
		}
	}
	after := settle()
	if after > base+2 {
		t.Fatalf("goroutines grew from %d to %d across create/close cycles — a checkpoint goroutine, ticker, interrupt watcher, or spill writer leaked", base, after)
	}
}

// TestGatewayBoundedRetention100k pins the headline acceptance criterion
// at the gateway level: with Retention.MaxResidentRecords = 4096, a run of
// 100k instrumented requests keeps the resident ledger bounded — the
// chain, totals and truncated dump remain exactly verifiable at the end.
func TestGatewayBoundedRetention100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k gateway requests")
	}
	const (
		total       = 100_000
		maxResident = 4096
		shards      = 4
	)
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
		PoolPrewarm: 1,
		Ledger: accounting.LedgerOptions{
			Shards:    shards,
			Retention: accounting.RetentionPolicy{MaxResidentRecords: maxResident},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	segRecords := maxResident / (2 * shards)
	bound := maxResident + shards*segRecords + 64

	payload := []byte("bounded-retention-payload")
	peak := 0
	for i := 0; i < total; i++ {
		req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(payload))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, w.Code)
		}
		if r := srv.Ledger().Resident(); r > peak {
			peak = r
		}
	}
	if peak > bound {
		t.Fatalf("resident ledger records peaked at %d over %d requests, bound %d (budget %d)",
			peak, total, bound, maxResident)
	}
	t.Logf("served %d requests; resident peak %d (budget %d, bound %d)", total, peak, maxResident, bound)
	if got := srv.Ledger().Totals().Sequence; got != total {
		t.Fatalf("ledger covers %d records, want %d", got, total)
	}

	// /compact seals everything behind a fresh checkpoint. It mutates
	// state, so GET must be refused and POST do the work.
	gw := httptest.NewRecorder()
	srv.ServeHTTP(gw, httptest.NewRequest(http.MethodGet, faas.CompactPath, nil))
	if gw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compact: status %d, want %d", gw.Code, http.StatusMethodNotAllowed)
	}
	cw := httptest.NewRecorder()
	srv.ServeHTTP(cw, httptest.NewRequest(http.MethodPost, faas.CompactPath, nil))
	if cw.Code != http.StatusOK {
		t.Fatalf("POST /compact: status %d: %s", cw.Code, cw.Body.String())
	}
	var comp accounting.CompactResult
	if err := json.Unmarshal(cw.Body.Bytes(), &comp); err != nil {
		t.Fatal(err)
	}
	if comp.Checkpoint.Checkpoint.Covered() != total {
		t.Fatalf("/compact anchor covers %d, want %d", comp.Checkpoint.Checkpoint.Covered(), total)
	}
	if r := srv.Ledger().Resident(); r != 0 {
		t.Fatalf("resident %d after /compact, want 0", r)
	}

	// ...and the truncated dump streamed by /ledger verifies against that
	// anchor: a non-zero starting sequence on every shard, one signature
	// vouching for all 100k truncated records.
	lw := httptest.NewRecorder()
	srv.ServeHTTP(lw, httptest.NewRequest(http.MethodGet, faas.LedgerPath+"?truncated=1", nil))
	if lw.Code != http.StatusOK {
		t.Fatalf("/ledger?truncated=1: status %d", lw.Code)
	}
	vr, err := accounting.VerifyStream(bytes.NewReader(lw.Body.Bytes()),
		accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
	if err != nil {
		t.Fatalf("truncated dump verification: %v", err)
	}
	if !vr.Anchored || vr.StartRecords+uint64(vr.Records) != total {
		t.Fatalf("truncated dump: anchored=%v start=%d records=%d, want anchored covering %d",
			vr.Anchored, vr.StartRecords, vr.Records, total)
	}
	if vr.Totals.Sequence != total {
		t.Fatalf("verified cumulative totals cover %d records, want %d", vr.Totals.Sequence, total)
	}
}
