package faas_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"acctee/internal/faas"
	"acctee/internal/workloads"
)

func post(t *testing.T, url string, payload []byte, w, h int) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Width", strconv.Itoa(w))
	req.Header.Set("X-Height", strconv.Itoa(h))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	return resp, body
}

func TestEchoAllSetups(t *testing.T) {
	payload := workloads.TestImage(16, 16)
	for _, setup := range []faas.Setup{
		faas.SetupWASM, faas.SetupSGXSim, faas.SetupSGXHW,
		faas.SetupSGXHWInstr, faas.SetupSGXHWIO, faas.SetupJS,
	} {
		srv, err := faas.NewServer(faas.Echo, setup)
		if err != nil {
			t.Fatalf("%v: %v", setup, err)
		}
		ts := httptest.NewServer(srv)
		resp, body := post(t, ts.URL, payload, 0, 0)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%v: status %d", setup, resp.StatusCode)
			continue
		}
		if !bytes.Equal(body, payload) {
			t.Errorf("%v: echo mangled payload", setup)
		}
		if setup == faas.SetupSGXHWInstr || setup == faas.SetupSGXHWIO {
			if resp.Header.Get("X-Weighted-Instructions") == "" {
				t.Errorf("%v: missing accounting header", setup)
			}
		}
		if setup == faas.SetupSGXHWIO && srv.IOBytes() == 0 {
			t.Errorf("%v: no I/O accounted", setup)
		}
	}
}

func TestResizeOutputsMatchAcrossSetups(t *testing.T) {
	const size = 64
	img := workloads.TestImage(size, size)
	want := workloads.NativeResize(img, size, size)
	for _, setup := range []faas.Setup{faas.SetupWASM, faas.SetupSGXHWInstr, faas.SetupJS} {
		srv, err := faas.NewServer(faas.Resize, setup)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		resp, body := post(t, ts.URL, img, size, size)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d", setup, resp.StatusCode)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%v: resize output differs from native reference", setup)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	srv, err := faas.NewServer(faas.Echo, faas.SetupWASM)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	big := make([]byte, workloads.MaxPayload+1)
	resp, _ := post(t, ts.URL, big, 0, 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

func TestGenerateLoad(t *testing.T) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	srv, err := faas.NewServer(faas.Echo, faas.SetupJS)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	res := faas.GenerateLoad(ts.URL, 4, 12, []byte("ping"), 0, 0)
	if res.Requests != 12 || res.Errors != 0 {
		t.Errorf("load result %+v", res)
	}
	if srv.Requests() != 12 {
		t.Errorf("server saw %d requests, want 12", srv.Requests())
	}
	if res.ReqPerSec <= 0 {
		t.Errorf("nonsensical throughput %v", res.ReqPerSec)
	}
}
