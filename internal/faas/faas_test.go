package faas_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"acctee/internal/faas"
	"acctee/internal/workloads"
)

func post(t *testing.T, url string, payload []byte, w, h int) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Width", strconv.Itoa(w))
	req.Header.Set("X-Height", strconv.Itoa(h))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	return resp, body
}

func TestEchoAllSetups(t *testing.T) {
	payload := workloads.TestImage(16, 16)
	for _, setup := range []faas.Setup{
		faas.SetupWASM, faas.SetupSGXSim, faas.SetupSGXHW,
		faas.SetupSGXHWInstr, faas.SetupSGXHWIO, faas.SetupJS,
	} {
		srv, err := faas.NewServer(faas.Echo, setup)
		if err != nil {
			t.Fatalf("%v: %v", setup, err)
		}
		ts := httptest.NewServer(srv)
		resp, body := post(t, ts.URL, payload, 0, 0)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%v: status %d", setup, resp.StatusCode)
			continue
		}
		if !bytes.Equal(body, payload) {
			t.Errorf("%v: echo mangled payload", setup)
		}
		if setup == faas.SetupSGXHWInstr || setup == faas.SetupSGXHWIO {
			if resp.Header.Get("X-Weighted-Instructions") == "" {
				t.Errorf("%v: missing accounting header", setup)
			}
		}
		if setup == faas.SetupSGXHWIO && srv.IOBytes() == 0 {
			t.Errorf("%v: no I/O accounted", setup)
		}
	}
}

func TestResizeOutputsMatchAcrossSetups(t *testing.T) {
	const size = 64
	img := workloads.TestImage(size, size)
	want := workloads.NativeResize(img, size, size)
	for _, setup := range []faas.Setup{faas.SetupWASM, faas.SetupSGXHWInstr, faas.SetupJS} {
		srv, err := faas.NewServer(faas.Resize, setup)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		resp, body := post(t, ts.URL, img, size, size)
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d", setup, resp.StatusCode)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%v: resize output differs from native reference", setup)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	srv, err := faas.NewServer(faas.Echo, faas.SetupWASM)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	big := make([]byte, workloads.MaxPayload+1)
	resp, _ := post(t, ts.URL, big, 0, 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

func TestGenerateLoad(t *testing.T) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	srv, err := faas.NewServer(faas.Echo, faas.SetupJS)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	res := faas.GenerateLoad(ts.URL, 4, 12, []byte("ping"), 0, 0)
	if res.Requests != 12 || res.Errors != 0 {
		t.Errorf("load result %+v", res)
	}
	if srv.Requests() != 12 {
		t.Errorf("server saw %d requests, want 12", srv.Requests())
	}
	if res.ReqPerSec <= 0 {
		t.Errorf("nonsensical throughput %v", res.ReqPerSec)
	}
}

// TestGenerateLoadSurfacesFailures pins the satellite fix: failed-but-
// responded requests must not be silently absorbed — they are excluded from
// Requests/ReqPerSec, counted in Errors, broken down in ByStatus, and their
// X-Weighted-Instructions header (present or missing) never contributes.
func TestGenerateLoadSurfacesFailures(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		i := n.Add(1)
		switch {
		case i%3 == 0:
			// failure that still attaches the accounting header: it must
			// be treated exactly like one that does not.
			w.Header().Set("X-Weighted-Instructions", "12345")
			http.Error(w, "boom", http.StatusInternalServerError)
		case i%5 == 0:
			http.Error(w, "busy", http.StatusServiceUnavailable)
		default:
			w.Header().Set("X-Weighted-Instructions", "7")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok"))
		}
	}))
	defer ts.Close()

	const total = 30
	res := faas.GenerateLoad(ts.URL, 3, total, []byte("x"), 0, 0)

	want500 := total / 3          // every 3rd
	want503 := total/5 - total/15 // every 5th, minus overlaps with 3rd
	wantOK := total - want500 - want503
	if res.Requests != wantOK {
		t.Errorf("Requests = %d, want %d", res.Requests, wantOK)
	}
	if res.Errors != want500+want503 {
		t.Errorf("Errors = %d, want %d", res.Errors, want500+want503)
	}
	if res.ByStatus[http.StatusOK] != wantOK ||
		res.ByStatus[http.StatusInternalServerError] != want500 ||
		res.ByStatus[http.StatusServiceUnavailable] != want503 {
		t.Errorf("ByStatus = %v, want 200:%d 500:%d 503:%d", res.ByStatus, wantOK, want500, want503)
	}
	if res.Requests+res.Errors != total {
		t.Errorf("accounted %d requests, want %d", res.Requests+res.Errors, total)
	}
	// Only successful responses contribute accounting: 7 each, never the
	// 12345 attached to the 500s.
	if want := uint64(wantOK * 7); res.WeightedInstructions != want {
		t.Errorf("WeightedInstructions = %d, want %d", res.WeightedInstructions, want)
	}
}

// TestPooledServingMatchesRecompile: the pooled gateway must produce
// byte-identical responses and counters to the recompile-per-request
// baseline, across repeated requests on recycled instances.
func TestPooledServingMatchesRecompile(t *testing.T) {
	const size = 32
	img := workloads.TestImage(size, size)
	serve := func(opts faas.ServerOptions) ([]byte, string) {
		srv, err := faas.NewServerWithOptions(faas.Resize, faas.SetupSGXHWInstr, opts)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		var body []byte
		var counter string
		for i := 0; i < 3; i++ { // repeat so the pooled path reuses instances
			resp, b := post(t, ts.URL, img, size, size)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			body, counter = b, resp.Header.Get("X-Weighted-Instructions")
		}
		return body, counter
	}
	baseBody, baseCounter := serve(faas.ServerOptions{RecompilePerRequest: true})
	poolBody, poolCounter := serve(faas.ServerOptions{PoolPrewarm: 1})
	if !bytes.Equal(baseBody, poolBody) {
		t.Error("pooled response body differs from recompile baseline")
	}
	if baseCounter == "" || baseCounter != poolCounter {
		t.Errorf("pooled counter %q differs from baseline %q", poolCounter, baseCounter)
	}
}
