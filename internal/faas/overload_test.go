package faas_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/faas"
)

// TestAdmissionControlShedsUnderOverload: with one execution slot, no
// waiting room, and deliberately slow requests, concurrent callers must
// split into served (200) and shed (429 + Retry-After + stable error
// code) — never queue unboundedly, never 5xx.
func TestAdmissionControlShedsUnderOverload(t *testing.T) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = 20 * time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupJS, faas.ServerOptions{
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 8
	var (
		wg      sync.WaitGroup
		served  atomic.Int64
		shed    atomic.Int64
		unknown atomic.Int64
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL, []byte("x"), 0, 0)
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("shed response missing Retry-After")
				}
				var e struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != faas.ErrCodeOverloaded {
					t.Errorf("shed body %q, want error code %q", body, faas.ErrCodeOverloaded)
				}
			default:
				unknown.Add(1)
				t.Errorf("status %d, want 200 or 429", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("overload shed every request — nothing was served")
	}
	if shed.Load() == 0 {
		t.Fatal("8 concurrent 20ms requests against 1 slot shed nothing")
	}
	if got := srv.Shed(); got != uint64(shed.Load()) {
		t.Errorf("server counted %d shed, clients saw %d", got, shed.Load())
	}
}

// TestAdmissionQueueAbsorbsBurst: a bounded queue with a timeout longer
// than the burst turns would-be sheds into slightly delayed successes.
func TestAdmissionQueueAbsorbsBurst(t *testing.T) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = 2 * time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupJS, faas.ServerOptions{
		MaxInFlight:  1,
		MaxQueue:     8,
		QueueTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 6
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts.URL, []byte("x"), 0, 0)
			if resp.StatusCode == http.StatusOK {
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	if served.Load() != clients {
		t.Fatalf("served %d of %d — the queue shed a burst it had room for", served.Load(), clients)
	}
}

// TestRequestDeadlineInterruptsAndCharges: an expired deadline must abort
// the run cooperatively — 504 with the stable code, a ledger receipt for
// the partial (here: zero-work) run in the headers, the record reachable
// through /receipt, and the lane still advancing for later requests.
func TestRequestDeadlineInterruptsAndCharges(t *testing.T) {
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
		RequestTimeout: time.Nanosecond, // expired before the run starts
		Ledger:         accounting.LedgerOptions{Shards: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := post(t, ts.URL, []byte("hello"), 0, 0)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != faas.ErrCodeDeadlineExceeded {
		t.Fatalf("504 body %q, want error code %q", body, faas.ErrCodeDeadlineExceeded)
	}
	// The interrupted run still produced a chained, reachable record
	// charging exactly the work done (none — the deadline fired before
	// the first segment).
	shard := resp.Header.Get("X-Acct-Shard")
	seq := resp.Header.Get("X-Acct-Sequence")
	if shard == "" || seq == "" || resp.Header.Get("X-Acct-Chain") == "" {
		t.Fatalf("504 carries no ledger receipt: shard=%q seq=%q", shard, seq)
	}
	rresp, rbody := get(t, ts.URL+faas.ReceiptPath+"?shard="+shard+"&seq="+seq)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/receipt for the interrupted run: status %d", rresp.StatusCode)
	}
	var rec accounting.Record
	if err := json.Unmarshal(rbody, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Log.WeightedInstructions != 0 {
		t.Errorf("pre-expired deadline charged %d weighted instructions, want 0", rec.Log.WeightedInstructions)
	}
	if srv.Interrupted() != 1 {
		t.Errorf("Interrupted() = %d, want 1", srv.Interrupted())
	}

	// The lane keeps chaining behind the interrupted record.
	resp2, _ := post(t, ts.URL, []byte("hello"), 0, 0)
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("second request: status %d, want 504", resp2.StatusCode)
	}
	s1, _ := strconv.ParseUint(seq, 10, 64)
	s2, _ := strconv.ParseUint(resp2.Header.Get("X-Acct-Sequence"), 10, 64)
	if s2 != s1+1 {
		t.Errorf("sequence %d then %d — interrupted runs must advance the lane", s1, s2)
	}
}

// TestHealthEndpoints: /healthz and /readyz answer GETs with the gateway's
// pool/queue/ledger state; a healthy instrumented gateway is ready.
func TestHealthEndpoints(t *testing.T) {
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
		MaxInFlight: 4,
		MaxQueue:    2,
		Ledger:      accounting.LedgerOptions{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := post(t, ts.URL, []byte("x"), 0, 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke: status %d", resp.StatusCode)
	}
	for _, path := range []string{faas.HealthPath, faas.ReadyPath} {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", path, resp.StatusCode)
		}
		var h faas.HealthStatus
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if h.MaxInFlight != 4 || h.MaxQueue != 2 {
			t.Errorf("%s: limits %d/%d, want 4/2", path, h.MaxInFlight, h.MaxQueue)
		}
		if h.Requests != 1 {
			t.Errorf("%s: requests %d, want 1", path, h.Requests)
		}
		if h.Ledger == nil || h.Ledger.Degraded {
			t.Errorf("%s: ledger health %+v, want present and not degraded", path, h.Ledger)
		}
	}
}

// TestLoadGeneratorRetriesSheddedRequests: the load generator backs off
// and retries 429s, so a transient shed becomes a delayed success — and
// both the shed and the retries stay visible in the result.
func TestLoadGeneratorRetriesSheddedRequests(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	res := faas.GenerateLoadWithOptions(ts.URL, faas.LoadOptions{
		Clients: 1, Total: 1, Payload: []byte("x"),
		RetryBackoff: time.Millisecond,
	})
	if res.Requests != 1 || res.Errors != 0 {
		t.Fatalf("Requests/Errors = %d/%d, want 1/0 (retries must absorb the shed)", res.Requests, res.Errors)
	}
	if res.Shed != 2 || res.Retried != 2 {
		t.Fatalf("Shed/Retried = %d/%d, want 2/2", res.Shed, res.Retried)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	return resp, body
}
