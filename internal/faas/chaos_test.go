package faas_test

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/faas"
	"acctee/internal/fault"
	"acctee/internal/workloads"
)

// TestGatewayChaosCrashMidGroupCommitRecovers is the end-to-end fault
// drill: a gateway under sustained load, retention auto-compacting and
// spilling behind it, has its disk "crash" mid-group-commit — the dying
// write tears a frame, and every later write, sync, or truncate fails.
// The gateway must keep serving every request (the ledger degrades to
// bounded-in-memory retention instead of wedging), report the failure
// through /readyz, and after a restart on the same spill directory the
// recovery path must truncate the torn tail back to a signed anchor and
// leave a directory the offline verifier accepts.
func TestGatewayChaosCrashMidGroupCommitRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	inj := fault.New()
	ledgerOpts := accounting.LedgerOptions{
		Shards: 2,
		Retention: accounting.RetentionPolicy{
			MaxResidentRecords: 64, // auto-compactions fire throughout the load
			SegmentRecords:     16,
			SpillDir:           dir,
		},
	}
	crashOpts := ledgerOpts
	crashOpts.Faults = inj
	srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
		MaxInFlight: 32,
		MaxQueue:    64,
		Ledger:      crashOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	total := 10_000
	if testing.Short() {
		total = 1_000
	}
	payload := workloads.TestImage(8, 8)

	// Warm-up: let a few group commits land cleanly so the crash has a
	// durable, signed prefix to tear away from.
	warm := faas.GenerateLoadWithOptions(ts.URL, faas.LoadOptions{
		Clients: 4, Total: 200, Payload: payload,
	})
	if warm.Requests != 200 {
		t.Fatalf("warm-up served %d of 200 (status breakdown %v)", warm.Requests, warm.ByStatus)
	}
	// Arm the crash: the 3rd batch write from now tears 7 bytes into a
	// shard file and kills the disk. (Checkpoint-log appends share the
	// write schedule; whichever write is third, the image is a faithful
	// mid-commit power cut.)
	inj.CrashOnWrite(inj.Writes()+3, 7)

	res := faas.GenerateLoadWithOptions(ts.URL, faas.LoadOptions{
		Clients: 8, Total: total, Payload: payload,
	})
	if res.Requests != total {
		t.Fatalf("served %d of %d through the disk crash (status breakdown %v)",
			res.Requests, total, res.ByStatus)
	}
	if !inj.Crashed() {
		t.Fatal("the load never reached the armed crash point — not enough group commits")
	}
	// The async writer exhausts its retry budget on its own schedule.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if deg, _ := srv.Ledger().Degraded(); deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ledger never degraded after the disk crash")
		}
		time.Sleep(time.Millisecond)
	}

	// Liveness stays green; readiness reports the lost durability.
	hresp, _ := get(t, ts.URL+faas.HealthPath)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz on a degraded gateway: status %d, want 200", hresp.StatusCode)
	}
	rresp, rbody := get(t, ts.URL+faas.ReadyPath)
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz on a degraded gateway: status %d, want 503 (body %s)", rresp.StatusCode, rbody)
	}
	// And the degraded gateway still serves and accounts requests.
	if resp, _ := post(t, ts.URL, payload, 0, 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke on a degraded gateway: status %d", resp.StatusCode)
	}

	// Restart: reopen the spill directory with the same enclave identity
	// and a healthy disk. Recovery must truncate the torn tail back to a
	// frame-aligned signed anchor and carry the chain forward.
	enclave := srv.Enclave()
	srv.Close()
	l2, err := accounting.NewLedger(enclave, ledgerOpts)
	if err != nil {
		t.Fatalf("recovery after mid-group-commit crash: %v", err)
	}
	defer l2.Close()
	vres, err := accounting.VerifySpillDir(dir, accounting.VerifyOptions{Key: enclave.PublicKey()})
	if err != nil {
		t.Fatalf("spill dir does not verify after recovery: %v", err)
	}
	if vres.Records == 0 {
		t.Fatal("recovery kept no records — the durable prefix was lost, not just the torn tail")
	}
	// The recovered ledger keeps chaining and checkpointing.
	if _, _, err := l2.Append(accounting.UsageLog{WeightedInstructions: 1}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if _, err := l2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
}
