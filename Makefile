GO ?= go

.PHONY: all build test race chaos vet fmt-check bench bench-smoke verify-ledger clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages (striped sandbox instance
# pools, concurrent accounting-enclave runs on affinity-picked ledger
# lanes, the FaaS gateway) under the race detector — including the
# GOMAXPROCS=4 saturation stress tests.
race:
	$(GO) test -race ./internal/accounting/... ./internal/core/... ./internal/faas/... ./internal/interp/...

# chaos runs the fault-injection and overload suite under the race
# detector: injected disk faults (transient heal-via-retry, permanent
# degrade-not-wedge, scripted mid-group-commit crash + recovery), deadline
# interrupts with exact partial-work accounting, admission-control
# shedding, and the create/close leak matrix across all of them.
chaos:
	$(GO) test -race -run 'Fault|Chaos|Crash|Interrupt|RunContext|Overload|Shed|Degrade|NoLeak|Admission|Health' \
		./internal/fault/... ./internal/accounting/... ./internal/core/... ./internal/faas/... ./internal/interp/...

# verify-ledger is the tier-2 smoke path for the verifiable ledger: the
# faas example serves instrumented requests under bounded retention
# (sealed segments spill into build/spill as binary v2 frames) with the
# persisted checkpoint chain pruned to every 2nd checkpoint, compacts,
# proves a flipped byte inside a spilled binary frame is detected, and
# writes the full, truncated (checkpoint-anchored, non-zero starting
# sequence) and binary (v3 container) dumps into build/ (never the repo
# root); acctee-verify then replays all four offline — full dump,
# truncated dump, binary dump, and the spill directory itself.
verify-ledger:
	@mkdir -p build
	rm -rf build/spill
	$(GO) run ./examples/faas -dump build/ledger.json -spill-dir build/spill \
		-retention 8 -keep-every 2 -dump-truncated build/ledger-trunc.json \
		-dump-binary build/ledger.bin -prove-tamper
	$(GO) run ./cmd/acctee-verify -dump build/ledger.json
	$(GO) run ./cmd/acctee-verify -dump build/ledger-trunc.json
	$(GO) run ./cmd/acctee-verify -dump build/ledger.bin
	$(GO) run ./cmd/acctee-verify -spill build/spill

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench records the perf trajectory: the PolyBench interpreter dispatch
# comparison (structured reference vs flat vs fused engine, plus the ALU
# and memory-traffic microbenchmarks) in BENCH_interp.json, the
# compile-once/run-many FaaS gateway comparison (per-request compile vs
# cached CompiledModule + instance pool) in BENCH_faas.json, and — both in
# BENCH_ledger.json — the eager vs checkpoint-batched ledger signing
# comparison (plus 10k-record offline-verification cost) and the bounded
# vs unbounded retention sweep (resident records + heap + append rate at
# 10k/100k/1M records × GOMAXPROCS 1/4/16), and the multi-core scaling
# matrix (pooled gateway + bounded ledger at GOMAXPROCS 1/4/16, written
# into the scaling sections of BENCH_faas.json / BENCH_ledger.json).
bench:
	$(GO) run ./cmd/acctee-bench -fig dispatch -trials 3 -json BENCH_interp.json
	$(GO) run ./cmd/acctee-bench -fig faas -requests 60 -json BENCH_faas.json
	$(GO) run ./cmd/acctee-bench -fig ledger -requests 400 -json BENCH_ledger.json
	$(GO) run ./cmd/acctee-bench -fig retention -json BENCH_ledger.json
	$(GO) run ./cmd/acctee-bench -fig scaling -json BENCH_faas.json -json-ledger BENCH_ledger.json

# bench-smoke is the CI perf gate: the fused engine must not fall below
# the flat engine on the dispatch/memory microbenchmarks, the call-heavy
# suite must beat its no-inline (legacy call path) baseline by >= 1.15x
# geomean on the reg engine, spill-mode retention must keep up with
# bounded, and on hosts with >= 4 CPUs the pooled gateway and bounded
# ledger must reach >= 1.8x their single-proc throughput at GOMAXPROCS=4
# (generous noise tolerance; the gate exits non-zero on regression and
# skips the scaling check on smaller hosts).
bench-smoke:
	$(GO) run ./cmd/acctee-bench -fig smoke -trials 5

clean:
	$(GO) clean ./...
