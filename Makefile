GO ?= go

.PHONY: all build test vet fmt-check bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs the PolyBench interpreter dispatch comparison (structured
# reference engine vs flat engine) and records the perf trajectory in
# BENCH_interp.json.
bench:
	$(GO) run ./cmd/acctee-bench -fig dispatch -trials 3 -json BENCH_interp.json

clean:
	$(GO) clean ./...
