GO ?= go

.PHONY: all build test race vet fmt-check bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages (pooled sandbox instances,
# concurrent accounting-enclave runs, the FaaS gateway) under the race
# detector.
race:
	$(GO) test -race ./internal/core/... ./internal/faas/... ./internal/interp/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench records the perf trajectory: the PolyBench interpreter dispatch
# comparison (structured reference engine vs flat engine) in
# BENCH_interp.json, and the compile-once/run-many FaaS gateway comparison
# (per-request compile vs cached CompiledModule + instance pool) in
# BENCH_faas.json.
bench:
	$(GO) run ./cmd/acctee-bench -fig dispatch -trials 3 -json BENCH_interp.json
	$(GO) run ./cmd/acctee-bench -fig faas -requests 60 -json BENCH_faas.json

clean:
	$(GO) clean ./...
