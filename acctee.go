// Package acctee is the public API of the AccTEE reproduction: a
// WebAssembly-based two-way sandbox for trusted resource accounting
// (Goltzsche et al., Middleware '19).
//
// The workflow mirrors the paper's Fig. 3:
//
//  1. The workload provider compiles code to WebAssembly (here: text
//     format via ParseWAT, binary via DecodeBinary, or the builder in
//     internal/wasm for programmatic construction).
//  2. An Instrumenter — the instrumentation enclave (IE) — rewrites the
//     module with a weighted instruction counter and signs Evidence
//     binding input to output.
//  3. Both parties attest the IE and the accounting enclave (AE) against
//     their public measurements on a Platform (quoting enclave +
//     attestation service).
//  4. A Sandbox — the AE — verifies the evidence, executes the workload
//     inside the two-way sandbox, and chains one usage record per run onto
//     a sharded, hash-chained ledger. Checkpoints (signed periodically or
//     on request) cover the whole ledger with one signature; acctee-verify
//     replays a serialised ledger offline.
//
// See examples/quickstart for the complete chain in ~60 lines.
package acctee

import (
	"crypto/ecdsa"
	"io"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	wasmbin "acctee/internal/wasm/binary"
	"acctee/internal/wasm/validate"
	"acctee/internal/wasm/wat"
	"acctee/internal/weights"
)

// Module is a WebAssembly module in the AccTEE pipeline.
type Module struct {
	m *wasm.Module
}

// ParseWAT parses WebAssembly text format.
func ParseWAT(src string) (*Module, error) {
	m, err := wat.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := validate.Module(m); err != nil {
		return nil, err
	}
	return &Module{m: m}, nil
}

// DecodeBinary parses a wasm binary.
func DecodeBinary(b []byte) (*Module, error) {
	m, err := wasmbin.Decode(b)
	if err != nil {
		return nil, err
	}
	if err := validate.Module(m); err != nil {
		return nil, err
	}
	return &Module{m: m}, nil
}

// WrapModule adopts an internally-built module (used by the examples and
// the evaluation harness, whose workloads come from the builder API).
func WrapModule(m *wasm.Module) *Module { return &Module{m: m} }

// WAT renders the module as WebAssembly text.
func (m *Module) WAT() string { return wat.Print(m.m) }

// Binary encodes the module as a wasm binary.
func (m *Module) Binary() ([]byte, error) { return wasmbin.Encode(m.m) }

// Hash returns the module's SHA-256 identity (over the binary encoding).
func (m *Module) Hash() ([32]byte, error) { return core.ModuleHash(m.m) }

// Raw exposes the underlying module for advanced use.
func (m *Module) Raw() *wasm.Module { return m.m }

// CompiledModule is a compile-once execution artifact: the module lowered
// through the interpreter's compilation pass exactly once, with a pool of
// reusable sandbox instances behind it. Compile it once and Execute many
// times ("instrument once, execute many times", paper §3.3).
type CompiledModule struct {
	src  *Module
	cm   *interp.CompiledModule
	pool *interp.InstancePool
}

// Compile lowers the module once into a reusable execution artifact.
func (m *Module) Compile() (*CompiledModule, error) {
	cm, err := interp.Compile(m.m, interp.CompileOptions{})
	if err != nil {
		return nil, err
	}
	pool, err := cm.NewPool(interp.Config{}, interp.PoolConfig{})
	if err != nil {
		return nil, err
	}
	return &CompiledModule{src: m, cm: cm, pool: pool}, nil
}

// Module returns the source module.
func (c *CompiledModule) Module() *Module { return c.src }

// FuseStats reports how much of the artifact the fused tier's
// superinstruction pass covered.
func (c *CompiledModule) FuseStats() interp.FuseStats { return c.cm.FuseStats() }

// RegStats reports the register tier's allocation and specialisation
// coverage: register-file size, instructions under dedicated handlers, and
// spans wider than the fused tier's superinstructions.
func (c *CompiledModule) RegStats() interp.RegStats { return c.cm.RegStats() }

// Execute invokes an exported function on a pooled sandbox instance (no
// enclaves, no accounting) — the compile-once counterpart of Execute. It is
// safe to call concurrently.
func (c *CompiledModule) Execute(entry string, args ...uint64) ([]uint64, error) {
	vm, err := c.pool.Get(interp.Config{})
	if err != nil {
		return nil, err
	}
	defer c.pool.Put(vm)
	return vm.InvokeExport(entry, args...)
}

// OptLevel selects the instrumentation optimisation level (paper §3.6).
type OptLevel = instrument.Level

// Instrumentation levels.
const (
	Naive     = instrument.Naive
	FlowBased = instrument.FlowBased
	LoopBased = instrument.LoopBased
)

// Mode selects hardware or simulation enclaves (paper §5 setups).
type Mode = sgx.Mode

// Enclave modes.
const (
	Simulation = sgx.ModeSimulation
	Hardware   = sgx.ModeHardware
)

// Evidence is the instrumentation enclave's signed statement binding an
// instrumented module to its original (Fig. 3).
type Evidence = core.Evidence

// UsageLog is one execution's resource record (paper §3.5).
type UsageLog = accounting.UsageLog

// Record is one hash-chained ledger entry: a usage log bound to its shard
// and to the previous record of that shard.
type Record = accounting.Record

// Receipt locates a run's record in the sandbox ledger (shard, lane-local
// sequence, chain head).
type Receipt = accounting.Receipt

// SignedCheckpoint is a batch-signed ledger checkpoint: one enclave
// signature covering a contiguous prefix of every sequence lane plus the
// aggregate totals (the paper's "periodically or upon request" log).
type SignedCheckpoint = accounting.SignedCheckpoint

// LedgerOptions tune the sandbox ledger: shard (sequence-lane) count,
// per-record eager signing, periodic checkpointing, bounded retention.
type LedgerOptions = accounting.LedgerOptions

// RetentionPolicy bounds the ledger's resident memory: sealed segments are
// dropped behind signed checkpoints or spilled to append-only segment
// files (RetentionPolicy.SpillDir), with per-shard heads carried forward.
type RetentionPolicy = accounting.RetentionPolicy

// RecordStore is the retention layer behind a ledger (see
// LedgerOptions.Store for injecting a custom one).
type RecordStore = accounting.RecordStore

// CompactResult summarises one ledger compaction: the anchoring
// checkpoint, how many records left memory, what stayed resident.
type CompactResult = accounting.CompactResult

// DumpOptions select a full or checkpoint-anchored (truncated) dump.
type DumpOptions = accounting.DumpOptions

// LedgerDump is a serialised ledger for offline verification (acctee-verify).
type LedgerDump = accounting.Dump

// Weights is an instruction weight table (paper §3.7).
type Weights = weights.Table

// UnitWeights returns the plain instruction-counting table.
func UnitWeights() *Weights { return weights.Unit() }

// CalibratedWeights returns the Fig. 7-shaped cycle weight table.
func CalibratedWeights() *Weights { return weights.Calibrated() }

// Platform is one infrastructure-provider machine: its quoting enclave
// registered with an attestation service (paper §2.2).
type Platform struct {
	QE *sgx.QuotingEnclave
	AS *sgx.AttestationService
}

// NewPlatform provisions a platform with a fresh quoting enclave.
func NewPlatform(name string) (*Platform, error) {
	qe, err := sgx.NewQuotingEnclave()
	if err != nil {
		return nil, err
	}
	as := sgx.NewAttestationService()
	as.RegisterPlatform(name, qe)
	return &Platform{QE: qe, AS: as}, nil
}

// Instrumenter is the instrumentation enclave (IE).
type Instrumenter struct {
	ie *core.InstrumentationEnclave
}

// NewInstrumenter creates an IE at the given level; nil weights means unit
// (plain instruction counting).
func NewInstrumenter(level OptLevel, w *Weights) (*Instrumenter, error) {
	ie, err := core.NewInstrumentationEnclave(level, w)
	if err != nil {
		return nil, err
	}
	return &Instrumenter{ie: ie}, nil
}

// Instrument rewrites the module for weighted instruction counting and
// signs the evidence.
func (i *Instrumenter) Instrument(m *Module) (*Module, Evidence, error) {
	out, ev, err := i.ie.Instrument(m.m)
	if err != nil {
		return nil, Evidence{}, err
	}
	return &Module{m: out}, ev, nil
}

// PublicKey returns the IE's evidence-signing key.
func (i *Instrumenter) PublicKey() *ecdsa.PublicKey { return i.ie.PublicKey() }

// Attest verifies this IE against its public measurement on the platform.
func (i *Instrumenter) Attest(p *Platform) error {
	q, err := i.ie.Quote(p.QE)
	if err != nil {
		return err
	}
	return p.AS.Attest(q, core.IEMeasurement(), i.ie.PublicKey())
}

// RunOptions configure one sandbox execution.
type RunOptions = core.RunOptions

// Engine selects the interpreter tier for a run. Accounting — instruction
// counts, weighted cost, fuel, trap points — is bit-identical across tiers.
type Engine = interp.Engine

// ParseEngine maps the CLI spelling of an engine tier (structured, flat,
// fused, reg) to its Engine value.
func ParseEngine(s string) (Engine, error) { return interp.ParseEngine(s) }

// RunResult is one execution's results plus its signed usage log.
type RunResult = core.RunResult

// Sandbox is the accountable two-way sandbox: the accounting enclave (AE)
// hosting the execution sandbox.
type Sandbox struct {
	ae *core.AccountingEnclave
}

// PoolConfig tunes the sandbox instance pool (compile-once, run-many).
type PoolConfig = interp.PoolConfig

// SandboxConfig configures sandbox creation.
type SandboxConfig struct {
	// Mode selects hardware or simulation (default Hardware).
	Mode Mode
	// Costs overrides the SGX cost parameters (zero value = paper
	// defaults: 93 MB EPC).
	Costs sgx.CostParams
	// Weights must match the table the evidence was produced with
	// (nil = unit).
	Weights *Weights
	// Pool tunes sandbox instance reuse across runs: Disabled forces a
	// fresh instantiation per Run, Prewarm pre-creates instances. The zero
	// value pools lazily.
	Pool PoolConfig
	// Ledger tunes the hash-chained usage ledger: shard count (default one
	// lane per CPU), EagerSign for per-record signatures, and
	// CheckpointInterval for periodic batch signing.
	Ledger LedgerOptions
}

// NewSandbox verifies the instrumented module against the evidence (signed
// by iePub, which the caller must have attested) and prepares execution.
// The module is compiled once here; Run reuses pooled instances and is safe
// to call concurrently.
func NewSandbox(cfg SandboxConfig, m *Module, ev Evidence, iePub *ecdsa.PublicKey) (*Sandbox, error) {
	if cfg.Mode == 0 {
		cfg.Mode = Hardware
	}
	if cfg.Costs == (sgx.CostParams{}) {
		cfg.Costs = sgx.DefaultCostParams()
	}
	ae, err := core.NewAccountingEnclave(cfg.Mode, cfg.Costs, cfg.Weights, m.m, ev, iePub)
	if err != nil {
		return nil, err
	}
	if cfg.Pool != (PoolConfig{}) {
		if err := ae.SetPoolConfig(cfg.Pool); err != nil {
			return nil, err
		}
	}
	if cfg.Ledger != (LedgerOptions{}) {
		if err := ae.SetLedgerOptions(cfg.Ledger); err != nil {
			return nil, err
		}
	}
	return &Sandbox{ae: ae}, nil
}

// Attest verifies this sandbox's accounting enclave on the platform.
func (s *Sandbox) Attest(p *Platform) error {
	q, err := s.ae.Quote(p.QE)
	if err != nil {
		return err
	}
	return p.AS.Attest(q, core.AEMeasurement(), s.ae.PublicKey())
}

// PublicKey returns the AE's log-signing key.
func (s *Sandbox) PublicKey() *ecdsa.PublicKey { return s.ae.PublicKey() }

// Run executes an exported function and returns results plus the receipt
// and hash-chained record in the sandbox ledger.
func (s *Sandbox) Run(opts RunOptions) (RunResult, error) { return s.ae.Run(opts) }

// Snapshot signs a checkpoint on request: one signature covering every
// record chained so far, with cumulative totals.
func (s *Sandbox) Snapshot() (SignedCheckpoint, error) { return s.ae.Snapshot() }

// Dump serialises the sandbox ledger for offline verification.
func (s *Sandbox) Dump() (*LedgerDump, error) { return s.ae.Ledger().Dump() }

// WriteDump streams the serialised ledger to w in O(segment) memory;
// DumpOptions{Truncated: true} anchors it at the last compaction
// checkpoint (non-zero starting sequences, heads carried forward).
func (s *Sandbox) WriteDump(w io.Writer, opts DumpOptions) error {
	return s.ae.Ledger().WriteDump(w, opts)
}

// Compact bounds the ledger's resident footprint: signs a checkpoint
// covering every record chained so far and seals (spills or drops) what it
// covers, leaving chain heads carried forward. With
// LedgerOptions.Retention.MaxResidentRecords set, the sandbox does this
// automatically whenever the resident count exceeds the budget.
func (s *Sandbox) Compact() (CompactResult, error) { return s.ae.Compact() }

// Close stops the ledger's periodic checkpoint goroutine, if configured,
// and closes its spill files.
func (s *Sandbox) Close() { s.ae.Close() }

// VerifyRecord checks an eager-mode record: hash consistency plus its
// per-record enclave signature against the attested AE key. Records from
// the default batched mode carry no individual signature and return
// accounting.ErrNoRecordSignature — verify them through a covering
// checkpoint (VerifyCheckpoint / VerifyLedger) instead.
func VerifyRecord(r Record, aePub *ecdsa.PublicKey) error {
	return accounting.VerifyRecordSig(r, aePub)
}

// VerifyCheckpoint checks a batch-signed checkpoint against the attested AE
// key and the public AE measurement.
func VerifyCheckpoint(sc SignedCheckpoint, aePub *ecdsa.PublicKey) error {
	return accounting.VerifyCheckpointSig(sc, aePub, core.AEMeasurement())
}

// VerifyLedger replays a serialised ledger offline against the attested AE
// key: chain continuity from the carried-forward heads, per-shard
// gap-freedom, checkpoint signatures, and totals reconstruction (the
// acctee-verify command wraps this). Anchored (truncated) dumps verify
// from their non-zero starting sequences against the anchor's signature.
func VerifyLedger(d *LedgerDump, aePub *ecdsa.PublicKey) (*accounting.VerifyResult, error) {
	return accounting.VerifyDump(d, accounting.VerifyOptions{Key: aePub, Measurement: core.AEMeasurement()})
}

// VerifyLedgerStream verifies a serialised ledger straight off a reader in
// O(segment) memory — the streaming counterpart of VerifyLedger for dumps
// too large to materialise.
func VerifyLedgerStream(r io.Reader, aePub *ecdsa.PublicKey) (*accounting.VerifyResult, error) {
	return accounting.VerifyStream(r, accounting.VerifyOptions{Key: aePub, Measurement: core.AEMeasurement()})
}

// Execute is a convenience for untrusted-free local runs (no enclaves, no
// accounting): instantiate the module and call an export.
func Execute(m *Module, entry string, args ...uint64) ([]uint64, error) {
	vm, err := interp.Instantiate(m.m, interp.Config{})
	if err != nil {
		return nil, err
	}
	return vm.InvokeExport(entry, args...)
}

// Version identifies this implementation.
const Version = "1.0.0"
