// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark family corresponds to one figure; the full-size
// experiment runners (with the paper's parameter ranges) live in
// internal/bench and the cmd/acctee-bench CLI. The benchmark variants here
// use harness-scale parameters so `go test -bench=.` completes on a laptop
// while preserving the comparisons' shape.
package acctee_test

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"acctee/internal/bench"
	"acctee/internal/faas"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/polybench"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	wasmbin "acctee/internal/wasm/binary"
	"acctee/internal/weights"
	"acctee/internal/workloads"
)

// benchKernels is the Fig. 6 subset benchmarked per-commit; the full 29
// run via `acctee-bench -fig 6`.
var benchKernels = []string{"gemm", "2mm", "atax", "jacobi-2d", "cholesky", "nussinov", "doitgen", "durbin"}

// BenchmarkFig6 measures PolyBench kernels under the paper's four setups.
func BenchmarkFig6(b *testing.B) {
	for _, name := range benchKernels {
		k, err := polybench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		n := k.DefaultN * 2 / 3
		if n < 8 {
			n = 8
		}
		m, err := k.Build(n)
		if err != nil {
			b.Fatal(err)
		}
		inst, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
		if err != nil {
			b.Fatal(err)
		}
		params := sgx.DefaultCostParams()
		params.UsableEPCBytes = bench.Fig6EPCBytes

		b.Run(name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = k.Native(n)
			}
		})
		b.Run(name+"/wasm", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runModule(b, m, nil)
			}
		})
		b.Run(name+"/wasm-sgx-sim", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runModule(b, m, sgx.NewEPCModel(sgx.ModeSimulation, params, nil))
			}
		})
		b.Run(name+"/wasm-sgx-hw", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runModule(b, m, sgx.NewEPCModel(sgx.ModeHardware, params, nil))
			}
		})
		b.Run(name+"/wasm-sgx-hw-instr", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runModule(b, inst.Module, sgx.NewEPCModel(sgx.ModeHardware, params, nil))
			}
		})
	}
}

func runModule(b *testing.B, m *wasm.Module, model interp.CostModel) {
	b.Helper()
	vm, err := interp.Instantiate(m, interp.Config{CostModel: model})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := vm.InvokeExport("run"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig7 measures representative per-instruction costs (the full
// 127-instruction sweep runs via `acctee-bench -fig 7`).
func BenchmarkFig7(b *testing.B) {
	for _, op := range []wasm.Opcode{
		wasm.OpI32Add, wasm.OpI64Mul, wasm.OpF64Add, wasm.OpF64Floor,
		wasm.OpI64DivS, wasm.OpF64Sqrt,
	} {
		b.Run(op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := weights.MeasureInstr(op, 4096); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8 measures memory access cost by size and pattern.
func BenchmarkFig8(b *testing.B) {
	for _, sz := range []int{1 << 20, 16 << 20} {
		for _, pattern := range []weights.MemPattern{weights.Linear, weights.Random} {
			for _, store := range []bool{false, true} {
				op := "load"
				if store {
					op = "store"
				}
				name := fmt.Sprintf("%dMB/%s/%s", sz>>20, pattern, op)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := weights.MeasureMem(wasm.F64, store, pattern, sz, 16384); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig9 measures FaaS request handling per setup (single request
// per iteration; the concurrent-throughput experiment runs via
// `acctee-bench -fig 9`).
func BenchmarkFig9(b *testing.B) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = 2 * time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	const size = 64
	img := workloads.TestImage(size, size)
	for _, fn := range []faas.Function{faas.Echo, faas.Resize} {
		for _, setup := range []faas.Setup{
			faas.SetupWASM, faas.SetupSGXSim, faas.SetupSGXHW,
			faas.SetupSGXHWInstr, faas.SetupSGXHWIO, faas.SetupJS,
		} {
			srv, err := faas.NewServer(fn, setup)
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv)
			b.Run(fmt.Sprintf("%s/%s", fn, setup), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := faas.GenerateLoad(ts.URL, 1, 1, img, size, size)
					if res.Errors > 0 {
						b.Fatal("request failed")
					}
				}
			})
			ts.Close()
		}
	}
}

// BenchmarkFig10 measures the volunteer-computing and pay-by-computation
// workloads per instrumentation level.
func BenchmarkFig10(b *testing.B) {
	wls := []struct {
		name  string
		build func() (*wasm.Module, error)
		args  []uint64
	}{
		{"MSieve", workloads.BuildMSieve, []uint64{1_000_003, 10}},
		{"PC", func() (*wasm.Module, error) { return workloads.BuildPC(14, 40) }, nil},
		{"SubsetSum", workloads.BuildSubsetSum, []uint64{30, 20_000}},
		{"Darknet", func() (*wasm.Module, error) { return workloads.BuildDarknet(16, 4) }, nil},
	}
	for _, wl := range wls {
		m, err := wl.build()
		if err != nil {
			b.Fatal(err)
		}
		variants := map[string]*wasm.Module{"uninstrumented": m}
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(m, instrument.Options{Level: lvl})
			if err != nil {
				b.Fatal(err)
			}
			variants[lvl.String()] = res.Module
		}
		for _, variant := range []string{"uninstrumented", "naive", "flow-based", "loop-based"} {
			mod := variants[variant]
			b.Run(wl.name+"/"+variant, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vm, err := interp.Instantiate(mod, interp.Config{})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := vm.InvokeExport("run", wl.args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableSize measures the §5.4 binary-size pipeline (instrument +
// encode across all evaluation modules).
func BenchmarkTableSize(b *testing.B) {
	k, err := polybench.Get("gemm")
	if err != nil {
		b.Fatal(err)
	}
	m, err := k.Build(12)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("instrument+encode/gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wasmbin.Encode(res.Module); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDispatch compares interpreter dispatch on PolyBench kernels:
// the structured reference engine (label stack, per-instruction accounting)
// against the flat engine (precompiled branch sidetable, block-batched
// accounting), the fused engine (superinstructions, folded addressing) and
// the register engine (register-form IR, direct-threaded closures).
// `make bench` runs the same comparison via acctee-bench and records it in
// BENCH_interp.json.
func BenchmarkDispatch(b *testing.B) {
	for _, name := range bench.DispatchKernels {
		k, err := polybench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		n := k.DefaultN * 2 / 3
		if n < 8 {
			n = 8
		}
		m, err := k.Build(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []struct {
			name   string
			engine interp.Engine
		}{{"structured", interp.EngineStructured}, {"flat", interp.EngineFlat}, {"fused", interp.EngineFused}, {"reg", interp.EngineReg}} {
			b.Run(name+"/"+eng.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vm, err := interp.Instantiate(m, interp.Config{Engine: eng.engine})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := vm.InvokeExport("run"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInterpreter is the engine microbenchmark: raw instructions per
// second on a tight arithmetic loop (context for all absolute numbers).
func BenchmarkInterpreter(b *testing.B) {
	bld := wasm.NewModule("spin")
	f := bld.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Xor).LocalSet(acc)
	})
	f.LocalGet(acc)
	bld.ExportFunc("run", f.End())
	m := bld.MustBuild()
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.InvokeExport("run", 10_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(vm.InstrCount())/float64(b.Elapsed().Seconds())/1e6, "Minstr/s")
}
