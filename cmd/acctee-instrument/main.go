// Command acctee-instrument runs the instrumentation-enclave step of the
// AccTEE pipeline: it reads a WebAssembly text module, injects the weighted
// instruction counter at the requested optimisation level, and writes the
// instrumented WAT plus a JSON evidence record.
//
// Usage:
//
//	acctee-instrument -in module.wat -out instrumented.wat -evidence ev.json -level loop
package main

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"acctee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acctee-instrument:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input WAT file")
	out := flag.String("out", "", "output WAT file (default: stdout)")
	evOut := flag.String("evidence", "", "evidence JSON output file (default: stdout)")
	level := flag.String("level", "loop", "instrumentation level: naive, flow, loop")
	flag.Parse()
	if *in == "" {
		return errors.New("missing -in")
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	m, err := acctee.ParseWAT(string(src))
	if err != nil {
		return err
	}
	var lvl acctee.OptLevel
	switch *level {
	case "naive":
		lvl = acctee.Naive
	case "flow":
		lvl = acctee.FlowBased
	case "loop":
		lvl = acctee.LoopBased
	default:
		return fmt.Errorf("unknown level %q", *level)
	}
	ie, err := acctee.NewInstrumenter(lvl, nil)
	if err != nil {
		return err
	}
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(inst.WAT())
	} else if err := os.WriteFile(*out, []byte(inst.WAT()), 0o644); err != nil {
		return err
	}
	evJSON, err := json.MarshalIndent(map[string]interface{}{
		"originalHash":     base64.StdEncoding.EncodeToString(ev.OriginalHash[:]),
		"instrumentedHash": base64.StdEncoding.EncodeToString(ev.InstrumentedHash[:]),
		"counterGlobal":    ev.CounterGlobal,
		"counterName":      ev.CounterName,
		"level":            ev.Level.String(),
		"signature":        base64.StdEncoding.EncodeToString(ev.Signature),
	}, "", "  ")
	if err != nil {
		return err
	}
	if *evOut == "" {
		fmt.Println(string(evJSON))
		return nil
	}
	return os.WriteFile(*evOut, evJSON, 0o644)
}
