// Command acctee-run executes a WebAssembly module inside the accountable
// two-way sandbox and prints the signed resource usage log. It performs the
// whole Fig. 3 pipeline in one process: instrumentation, attestation of
// both enclaves, evidence verification, execution and log verification.
//
// Usage:
//
//	acctee-run -module module.wat -entry run -args 10,20 [-mode hw|sim] [-fuel N]
//	           [-engine structured|flat|fused|reg]
//
// -engine picks the interpreter tier; the signed accounting record is
// bit-identical across all four tiers.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acctee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acctee-run:", err)
		os.Exit(1)
	}
}

func run() error {
	modPath := flag.String("module", "", "WAT module file")
	entry := flag.String("entry", "run", "exported function to invoke")
	argList := flag.String("args", "", "comma-separated uint64 arguments")
	mode := flag.String("mode", "hw", "enclave mode: hw or sim")
	fuel := flag.Uint64("fuel", 0, "instruction limit (0 = unlimited)")
	level := flag.String("level", "loop", "instrumentation level: naive, flow, loop")
	engineName := flag.String("engine", "fused", "interpreter tier: structured, flat, fused, reg (accounting is identical across tiers)")
	flag.Parse()
	if *modPath == "" {
		return errors.New("missing -module")
	}
	engine, err := acctee.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*modPath)
	if err != nil {
		return err
	}
	m, err := acctee.ParseWAT(string(src))
	if err != nil {
		return err
	}
	var args []uint64
	if *argList != "" {
		for _, a := range strings.Split(*argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
			if err != nil {
				return fmt.Errorf("bad argument %q: %w", a, err)
			}
			args = append(args, v)
		}
	}
	var lvl acctee.OptLevel
	switch *level {
	case "naive":
		lvl = acctee.Naive
	case "flow":
		lvl = acctee.FlowBased
	default:
		lvl = acctee.LoopBased
	}
	enclMode := acctee.Hardware
	if *mode == "sim" {
		enclMode = acctee.Simulation
	}

	platform, err := acctee.NewPlatform("local")
	if err != nil {
		return err
	}
	ie, err := acctee.NewInstrumenter(lvl, nil)
	if err != nil {
		return err
	}
	if err := ie.Attest(platform); err != nil {
		return fmt.Errorf("IE attestation: %w", err)
	}
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		return err
	}
	// A one-shot run wants its record signed immediately (eager mode); the
	// checkpointed batch path is for long-running gateways.
	sb, err := acctee.NewSandbox(acctee.SandboxConfig{
		Mode:   enclMode,
		Ledger: acctee.LedgerOptions{EagerSign: true},
	}, inst, ev, ie.PublicKey())
	if err != nil {
		return err
	}
	defer sb.Close()
	if err := sb.Attest(platform); err != nil {
		return fmt.Errorf("AE attestation: %w", err)
	}
	res, err := sb.Run(acctee.RunOptions{Entry: *entry, Args: args, Fuel: *fuel, Engine: engine})
	if err != nil {
		return err
	}
	if err := acctee.VerifyRecord(res.Record, sb.PublicKey()); err != nil {
		return fmt.Errorf("record verification: %w", err)
	}
	fmt.Printf("results: %v\n", res.Results)
	recJSON, err := json.Marshal(res.Record)
	if err != nil {
		return err
	}
	fmt.Printf("signed ledger record (verified): %s\n", recJSON)
	return nil
}
