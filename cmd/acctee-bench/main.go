// Command acctee-bench regenerates the paper's evaluation figures and
// tables (§5) on this machine.
//
// Usage:
//
//	acctee-bench -fig all          # everything
//	acctee-bench -fig 6            # PolyBench sandboxing overhead
//	acctee-bench -fig 7 -n 10000   # per-instruction weights
//	acctee-bench -fig 8            # memory access costs
//	acctee-bench -fig 9 -requests 20
//	acctee-bench -fig 10
//	acctee-bench -fig size         # §5.4 binary sizes
//	acctee-bench -fig dispatch -json BENCH_interp.json
//	                               # three-way engine comparison + microbenchmarks
//	acctee-bench -fig smoke        # CI gates: fused must not regress below flat,
//	                               # call inlining must beat the no-inline
//	                               # baseline by ≥ 1.15x geomean,
//	                               # spill-mode retention must hold ≥ 0.35x bounded,
//	                               # GOMAXPROCS=4 must reach ≥ 1.8x GOMAXPROCS=1
//	                               # on hosts with ≥ 4 CPUs
//	                               # (standalone; not included in -fig all)
//	acctee-bench -fig faas -json BENCH_faas.json
//	                               # compile-once/run-many gateway benchmark
//	acctee-bench -fig ledger -json BENCH_ledger.json
//	                               # eager vs checkpoint-batched ledger signing
//	acctee-bench -fig retention -json BENCH_ledger.json
//	                               # bounded vs unbounded vs spill ledger retention
//	                               # at 10k/100k/1M records × GOMAXPROCS 1/4/16
//	                               # (standalone, like smoke)
//	acctee-bench -fig scaling -json BENCH_faas.json -json-ledger BENCH_ledger.json
//	                               # GOMAXPROCS 1/4/16 saturation matrix for the
//	                               # pooled gateway and the bounded ledger
//	                               # (standalone, like smoke)
//
// -engine {structured,flat,fused,reg} selects the interpreter tier for the
// single-engine figures (6/9/10); the dispatch and call suites always sweep
// all four tiers.
//
// -mutexprofile / -blockprofile enable Go's contention profilers for the
// run and write build/mutex.pprof / build/block.pprof on exit — point `go
// tool pprof` at them to see which locks the measured figure waits on.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"acctee/internal/bench"
	"acctee/internal/faas"
	"acctee/internal/interp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acctee-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, size, all")
	n := flag.Uint64("n", 10000, "fig 7: executions per instruction")
	trials := flag.Int("trials", 3, "fig 6/10: best-of-n trials")
	requests := flag.Int("requests", 20, "fig 9: requests per configuration")
	clients := flag.Int("clients", 10, "fig 9: concurrent clients")
	quick := flag.Bool("quick", false, "shrink fig 8/9 parameter ranges")
	jsonOut := flag.String("json", "", "dispatch/faas/ledger/scaling: also write the report to this path")
	jsonLedger := flag.String("json-ledger", "", "scaling: write the ledger matrix to this path (BENCH_ledger.json)")
	mutexProf := flag.Bool("mutexprofile", false, "profile lock contention; writes build/mutex.pprof on exit")
	blockProf := flag.Bool("blockprofile", false, "profile blocking; writes build/block.pprof on exit")
	engineName := flag.String("engine", "fused", "interpreter tier for single-engine figures (6/9/10): structured, flat, fused, reg")
	flag.Parse()

	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	bench.DefaultEngine = engine

	if *mutexProf {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", filepath.Join("build", "mutex.pprof"))
	}
	if *blockProf {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
		defer writeProfile("block", filepath.Join("build", "block.pprof"))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	matched := false

	if want("6") {
		matched = true
		fmt.Println("== Fig. 6: PolyBench sandboxing overhead (normalised to native) ==")
		rows, err := bench.RunFig6(nil, *trials)
		if err != nil {
			return err
		}
		bench.PrintFig6(os.Stdout, rows)
		fmt.Println()
	}
	if want("7") {
		matched = true
		fmt.Println("== Fig. 7: per-instruction cost distribution ==")
		r, err := bench.RunFig7(*n)
		if err != nil {
			return err
		}
		bench.PrintFig7(os.Stdout, r)
		fmt.Println()
	}
	if want("8") {
		matched = true
		fmt.Println("== Fig. 8: memory access costs by size and pattern ==")
		sizes := []int{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}
		accesses := uint64(200_000)
		if *quick {
			sizes = []int{1 << 20, 16 << 20}
			accesses = 50_000
		}
		r, err := bench.RunFig8(sizes, accesses)
		if err != nil {
			return err
		}
		bench.PrintFig8(os.Stdout, r)
		fmt.Println()
	}
	if want("9") {
		matched = true
		fmt.Println("== Fig. 9: FaaS throughput (echo / resize) ==")
		opts := bench.Fig9Options{Requests: *requests, Clients: *clients}
		if *quick {
			opts.Sizes = []int{64, 128}
			opts.Setups = []faas.Setup{faas.SetupWASM, faas.SetupSGXHWInstr, faas.SetupJS}
		}
		rows, err := bench.RunFig9(opts)
		if err != nil {
			return err
		}
		bench.PrintFig9(os.Stdout, rows)
		fmt.Println()
	}
	if want("10") {
		matched = true
		fmt.Println("== Fig. 10: instrumentation optimisation levels ==")
		rows, err := bench.RunFig10(*trials)
		if err != nil {
			return err
		}
		bench.PrintFig10(os.Stdout, rows)
		fmt.Println()
	}
	if want("size") {
		matched = true
		fmt.Println("== §5.4: binary size overhead ==")
		rows, err := bench.RunSizeTable()
		if err != nil {
			return err
		}
		bench.PrintSizeTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("dispatch") {
		matched = true
		fmt.Println("== Interpreter dispatch: structured (reference) vs flat vs fused vs reg ==")
		rows, err := bench.RunDispatch(nil, *trials)
		if err != nil {
			return err
		}
		micro, err := bench.RunMicro(*trials)
		if err != nil {
			return err
		}
		calls, err := bench.RunCalls(*trials)
		if err != nil {
			return err
		}
		bench.PrintDispatch(os.Stdout, rows, micro)
		bench.PrintCalls(os.Stdout, calls)
		if *jsonOut != "" {
			if err := bench.WriteDispatchJSON(*jsonOut, rows, micro, calls); err != nil {
				return err
			}
			fmt.Println("wrote", *jsonOut)
		}
		fmt.Println()
	}
	// The smoke gate is standalone (never part of -fig all): it exits
	// non-zero on regression, which would turn every full bench run on a
	// noisy machine into a failure.
	if *fig == "smoke" {
		matched = true
		fmt.Println("== Bench smoke gate: fused must not regress below flat, reg below fused ==")
		micro, err := bench.RunMicro(*trials)
		if err != nil {
			return err
		}
		bench.PrintDispatch(os.Stdout, nil, micro)
		if err := bench.CheckMicroGate(micro, 0.85); err != nil {
			return err
		}
		fmt.Println("gate passed")
		fmt.Println()
		fmt.Println("== Bench smoke gate: call inlining must beat the no-inline baseline ==")
		calls, err := bench.RunCalls(*trials)
		if err != nil {
			return err
		}
		bench.PrintCalls(os.Stdout, calls)
		if err := bench.CheckCallGate(calls, bench.CallSmokeFloor); err != nil {
			return err
		}
		fmt.Println("gate passed")
		fmt.Println()
		fmt.Println("== Bench smoke gate: spill-mode retention must keep up with bounded ==")
		ratio, err := bench.RunRetentionSmoke()
		if err != nil {
			return err
		}
		fmt.Printf("bounded+spill runs at %.2fx bounded append throughput (floor %.2fx)\n",
			ratio, bench.RetentionSmokeRatio)
		if ratio < bench.RetentionSmokeRatio {
			return fmt.Errorf("bench: retention smoke gate failed: bounded+spill at %.2fx bounded, floor %.2fx",
				ratio, bench.RetentionSmokeRatio)
		}
		fmt.Println("gate passed")
		fmt.Println()
		fmt.Println("== Bench smoke gate: GOMAXPROCS=4 must beat GOMAXPROCS=1 ==")
		sres, err := bench.RunScalingSmoke()
		if err != nil {
			return err
		}
		fmt.Printf("gateway %.2fx, ledger %.2fx at 4 procs vs 1 (floor %.2fx, host CPUs %d)\n",
			sres.FaaS, sres.Ledger, bench.ScalingSmokeFloor, sres.HostCPUs)
		if !sres.Enforceable() {
			fmt.Printf("gate skipped: host has %d CPUs; GOMAXPROCS=4 cannot exceed one core's throughput\n", sres.HostCPUs)
		} else if !sres.Pass() {
			return fmt.Errorf("bench: scaling smoke gate failed: gateway %.2fx, ledger %.2fx at 4 procs, floor %.2fx",
				sres.FaaS, sres.Ledger, bench.ScalingSmokeFloor)
		} else {
			fmt.Println("gate passed")
		}
		fmt.Println()
	}
	if want("faas") {
		matched = true
		fmt.Println("== FaaS gateway: per-request compile vs cached CompiledModule + pool ==")
		samples := 200
		if *quick {
			samples = 30
		}
		rep, err := bench.RunFaaSBench(samples, *requests, nil)
		if err != nil {
			return err
		}
		bench.PrintFaaSBench(os.Stdout, rep)
		if *jsonOut != "" {
			// Preserve the scaling section a previous -fig scaling run left
			// in the file.
			if old := bench.LoadFaaSJSON(*jsonOut); old != nil {
				rep.Scaling = old.Scaling
			}
			if err := bench.WriteFaaSJSON(*jsonOut, rep); err != nil {
				return err
			}
			fmt.Println("wrote", *jsonOut)
		}
		fmt.Println()
	}
	if want("ledger") {
		matched = true
		fmt.Println("== Ledger: per-request eager signing vs checkpoint-batched ==")
		verifyRecords := 10_000
		if *quick {
			verifyRecords = 1_000
		}
		rep, err := bench.RunLedgerBench(*requests, verifyRecords, nil)
		if err != nil {
			return err
		}
		bench.PrintLedgerBench(os.Stdout, rep)
		if *jsonOut != "" {
			// Preserve the sections other figures left in the file.
			if old := bench.LoadLedgerJSON(*jsonOut); old != nil {
				rep.Retention = old.Retention
				rep.Scaling = old.Scaling
			}
			if err := bench.WriteLedgerJSON(*jsonOut, rep); err != nil {
				return err
			}
			fmt.Println("wrote", *jsonOut)
		}
		fmt.Println()
	}
	if *fig == "retention" {
		// Standalone (not part of -fig all): the 1M-record sweep is heavy.
		matched = true
		fmt.Println("== Ledger retention: resident memory + append rate, bounded vs unbounded ==")
		sizes := bench.RetentionSizes
		if *quick {
			sizes = []int{10_000, 100_000}
		}
		rep, err := bench.RunRetentionBench(sizes)
		if err != nil {
			return err
		}
		bench.PrintRetentionBench(os.Stdout, rep)
		if *jsonOut != "" {
			out := bench.LoadLedgerJSON(*jsonOut)
			if out == nil {
				out = &bench.LedgerReport{}
			}
			out.Retention = rep
			if err := bench.WriteLedgerJSON(*jsonOut, out); err != nil {
				return err
			}
			fmt.Println("wrote", *jsonOut)
		}
		fmt.Println()
	}
	if *fig == "scaling" {
		// Standalone (not part of -fig all): the matrix overrides GOMAXPROCS
		// per cell, which would perturb any figure sharing the process.
		matched = true
		fmt.Println("== Multi-core scaling: fixed load across GOMAXPROCS 1/4/16 ==")
		faasRequests, ledgerRecords := 600, 400_000
		if *quick {
			faasRequests, ledgerRecords = 150, 80_000
		}
		faasRep, err := bench.RunFaaSScaling(faasRequests, nil)
		if err != nil {
			return err
		}
		bench.PrintScaling(os.Stdout, "pooled resize gateway", faasRep)
		fmt.Println()
		ledgerRep, err := bench.RunLedgerScaling(ledgerRecords, nil)
		if err != nil {
			return err
		}
		bench.PrintScaling(os.Stdout, "bounded 4-shard ledger", ledgerRep)
		if *jsonOut != "" {
			out := bench.LoadFaaSJSON(*jsonOut)
			if out == nil {
				out = &bench.FaaSReport{}
			}
			out.Scaling = faasRep
			if err := bench.WriteFaaSJSON(*jsonOut, out); err != nil {
				return err
			}
			fmt.Println("wrote", *jsonOut)
		}
		if *jsonLedger != "" {
			out := bench.LoadLedgerJSON(*jsonLedger)
			if out == nil {
				out = &bench.LedgerReport{}
			}
			out.Scaling = ledgerRep
			if err := bench.WriteLedgerJSON(*jsonLedger, out); err != nil {
				return err
			}
			fmt.Println("wrote", *jsonLedger)
		}
		fmt.Println()
	}
	if want("ablation") {
		matched = true
		fmt.Println("== Ablation: counter updates eliminated per optimisation ==")
		rows, err := bench.RunAblation()
		if err != nil {
			return err
		}
		bench.PrintAblation(os.Stdout, rows)
		fmt.Println()
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (want 6, 7, 8, 9, 10, size, dispatch, smoke, faas, ledger, retention, scaling, all)", strings.TrimSpace(*fig))
	}
	return nil
}

// writeProfile dumps one runtime profile, creating build/ if needed.
// Profile writing is best-effort diagnostics: a failure warns, it never
// fails the bench run.
func writeProfile(name, path string) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "acctee-bench: %s profile: %v\n", name, err)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acctee-bench: %s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "acctee-bench: %s profile: %v\n", name, err)
		return
	}
	fmt.Println("wrote", path)
}
