// Command acctee-faas serves the paper's FaaS functions (echo, resize)
// behind an HTTP gateway in any of the six Fig. 9 deployment setups.
//
// Usage:
//
//	acctee-faas -listen :8080 -function resize -setup hw-instr
//
// Request payloads go in the POST body; resize reads image dimensions from
// the X-Width / X-Height headers. Instrumented setups return the weighted
// instruction count in X-Weighted-Instructions.
//
// -pprof <addr> serves net/http/pprof on a separate listener (e.g.
// localhost:6060), so CPU, mutex and block profiles can be pulled from a
// gateway under load without exposing the profiler on the serving address.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/faas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acctee-faas:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", ":8080", "listen address")
	fnName := flag.String("function", "echo", "function: echo or resize")
	setupName := flag.String("setup", "hw-instr", "setup: wasm, sim, hw, hw-instr, hw-io, js")
	noPool := flag.Bool("no-pool", false, "disable sandbox instance reuse (fresh instantiation per request)")
	prewarm := flag.Int("pool-prewarm", 0, "sandbox instances to pre-instantiate at startup")
	shards := flag.Int("ledger-shards", 0, "ledger sequence lanes (0 = one per CPU)")
	eager := flag.Bool("ledger-eager", false, "sign every ledger record at append time (per-request signature baseline)")
	cpEvery := flag.Duration("checkpoint-every", 10*time.Second, "periodic ledger checkpoint interval (0 = on request only)")
	retention := flag.Int("ledger-retention", 0, "max resident ledger records before auto-compaction (0 = unbounded)")
	spillDir := flag.String("ledger-spill", "", "spill sealed ledger segments to this directory (empty = drop after checkpointing); reopening the same directory recovers a crashed ledger")
	keepEvery := flag.Int("ledger-keep-every", 0, "prune the persisted checkpoint chain to every Kth checkpoint plus the anchor tip (0 or 1 = keep all; needs -ledger-spill)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-invocation deadline; an expired deadline interrupts the run at a segment boundary, charges the work done, and returns 504 with the partial run's receipt (0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing invocations; excess requests queue then shed with 429 (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "bounded waiting room for invocations when every slot is busy (0 = shed immediately; needs -max-inflight)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max wait for an execution slot before shedding a queued request (0 = 50ms default)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	var fn faas.Function
	switch *fnName {
	case "echo":
		fn = faas.Echo
	case "resize":
		fn = faas.Resize
	default:
		return fmt.Errorf("unknown function %q", *fnName)
	}
	var setup faas.Setup
	switch *setupName {
	case "wasm":
		setup = faas.SetupWASM
	case "sim":
		setup = faas.SetupSGXSim
	case "hw":
		setup = faas.SetupSGXHW
	case "hw-instr":
		setup = faas.SetupSGXHWInstr
	case "hw-io":
		setup = faas.SetupSGXHWIO
	case "js":
		setup = faas.SetupJS
	default:
		return fmt.Errorf("unknown setup %q", *setupName)
	}
	srv, err := faas.NewServerWithOptions(fn, setup, faas.ServerOptions{
		PoolDisabled:   *noPool,
		PoolPrewarm:    *prewarm,
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		Ledger: accounting.LedgerOptions{
			Shards:             *shards,
			EagerSign:          *eager,
			CheckpointInterval: *cpEvery,
			Retention: accounting.RetentionPolicy{
				MaxResidentRecords:  *retention,
				SpillDir:            *spillDir,
				CheckpointKeepEvery: *keepEvery,
			},
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if *pprofAddr != "" {
		// The gateway serves an explicit handler, so the pprof routes the
		// blank import registered on DefaultServeMux are only reachable
		// through this dedicated listener.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "acctee-faas: pprof:", err)
			}
		}()
		fmt.Printf("acctee-faas: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	fmt.Printf("acctee-faas: serving %s (%s) on %s (pool disabled=%v prewarm=%d)\n",
		fn, setup, *listen, *noPool, *prewarm)
	fmt.Printf("acctee-faas: health on GET %s (liveness), %s (readiness; 503 once the spill pipeline degrades)\n",
		faas.HealthPath, faas.ReadyPath)
	if *maxInflight > 0 {
		fmt.Printf("acctee-faas: admission control: %d in flight, queue %d, queue timeout %v; overload sheds 429\n",
			*maxInflight, *maxQueue, *queueTimeout)
	}
	if *reqTimeout > 0 {
		fmt.Printf("acctee-faas: request deadline %v (expired runs charge executed work and return 504)\n", *reqTimeout)
	}
	if srv.Ledger() != nil {
		fmt.Printf("acctee-faas: verifiable ledger on GET /receipt, /checkpoint, /ledger[?truncated=1][&bin=1] and POST /compact (eager=%v, checkpoint every %v)\n",
			*eager, *cpEvery)
		if *retention > 0 || *spillDir != "" {
			fmt.Printf("acctee-faas: bounded retention: max resident %d records, spill dir %q, checkpoint keep-every %d\n",
				*retention, *spillDir, *keepEvery)
		}
	}
	return http.ListenAndServe(*listen, srv)
}
