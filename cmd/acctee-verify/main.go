// Command acctee-verify replays a serialised accounting ledger offline and
// reports whether it is intact: per-shard hash-chain continuity (from the
// carried-forward heads of an anchoring checkpoint, for truncated dumps),
// gap-free lane sequences, checkpoint signatures against the attested
// enclave key, checkpoint chaining, and bit-exact totals reconstruction.
// A single flipped byte anywhere in the dump makes verification fail.
//
// Verification is streaming: records are consumed one at a time off the
// file, so a million-record dump verifies in O(segment) memory. Both dump
// containers are read with autodetection: the JSON v2 layout and the
// binary v3 container (DumpOptions.Binary, or /ledger?bin=1 on the
// gateway). Dumps may start at any checkpoint-anchored sequence (the
// gateway's /ledger?truncated=1, or Ledger.DumpTruncated) — the anchor's
// signature vouches for everything below the starting sequences. Dumps
// and spill directories whose checkpoint chain was pruned
// (RetentionPolicy.CheckpointKeepEvery) declare it, and the verifier
// then tolerates — and reports — sequence gaps between retained
// checkpoints; every retained checkpoint is still signature-checked.
//
// Usage:
//
//	acctee-verify -dump ledger.json [-measurement hex32] [-pubkey key.der]
//	acctee-verify -spill spill-dir  [-measurement hex32] [-pubkey key.der]
//
// -spill replays a bounded-retention ledger's spill directory instead:
// every spilled segment frame (binary v2 or legacy JSON v1, per the
// manifest format stamp) is re-hashed against the persisted checkpoint
// chain, so a flipped byte in any segment file is detected.
//
// By default the dump-embedded public key and measurement are used (fine
// when the dump travelled a trusted channel). A suspicious verifier passes
// the key and measurement it attested itself: -pubkey takes the PKIX DER
// public key, -measurement the expected enclave measurement in hex.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acctee-verify:", err)
		os.Exit(1)
	}
}

func run() error {
	dumpPath := flag.String("dump", "", "serialised ledger (JSON, see /ledger endpoint or Ledger.Dump)")
	spillDir := flag.String("spill", "", "bounded-retention spill directory to replay instead of a dump")
	measHex := flag.String("measurement", "", "expected enclave measurement (64 hex chars; empty = trust the dump)")
	keyPath := flag.String("pubkey", "", "attested enclave public key (PKIX DER file; empty = trust the dump)")
	flag.Parse()
	if *dumpPath == "" && *spillDir == "" {
		return fmt.Errorf("missing -dump or -spill")
	}

	var opts accounting.VerifyOptions
	if *measHex != "" {
		b, err := hex.DecodeString(*measHex)
		if err != nil || len(b) != len(sgx.Measurement{}) {
			return fmt.Errorf("-measurement wants %d hex bytes", len(sgx.Measurement{}))
		}
		copy(opts.Measurement[:], b)
	}
	if *keyPath != "" {
		der, err := os.ReadFile(*keyPath)
		if err != nil {
			return err
		}
		if opts.Key, err = accounting.ParsePublicKey(der); err != nil {
			return err
		}
	}

	if *spillDir != "" {
		res, err := accounting.VerifySpillDir(*spillDir, opts)
		if err != nil {
			return fmt.Errorf("SPILL INVALID: %w", err)
		}
		printResult(res, "spilled ledger")
		return nil
	}
	f, err := os.Open(*dumpPath)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := accounting.VerifyReader(f, opts)
	if err != nil {
		return fmt.Errorf("LEDGER INVALID: %w", err)
	}
	printResult(res, "ledger")
	return nil
}

func printResult(res *accounting.VerifyResult, what string) {
	fmt.Printf("%s OK: %d records across %d shards, %d checkpoints (%d records checkpoint-covered, %d eager signatures)\n",
		what, res.Records, res.Shards, res.Checkpoints, res.CoveredRecords, res.EagerSignatures)
	if res.Anchored {
		fmt.Printf("anchored at checkpoint %d: %d earlier records carried forward by its signature (dump starts mid-chain)\n",
			res.AnchorSequence, res.StartRecords)
	}
	if res.BeyondHorizon > 0 {
		fmt.Printf("%d checkpoints reach beyond the spilled horizon (signed after the last seal; signatures verified)\n",
			res.BeyondHorizon)
	}
	if res.PrunedCheckpointGaps > 0 {
		fmt.Printf("%d checkpoint-chain gaps accepted under declared pruning (every retained checkpoint signature-checked)\n",
			res.PrunedCheckpointGaps)
	}
	fmt.Printf("totals: %d weighted instructions, peak memory %d B, memory integral %d, io %d/%d B, %d simulated cycles\n",
		res.Totals.WeightedInstructions, res.Totals.PeakMemoryBytes, res.Totals.MemoryIntegral,
		res.Totals.IOBytesIn, res.Totals.IOBytesOut, res.Totals.SimulatedCycles)
}
