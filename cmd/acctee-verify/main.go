// Command acctee-verify replays a serialised accounting ledger offline and
// reports whether it is intact: per-shard hash-chain continuity, gap-free
// lane sequences, checkpoint signatures against the attested enclave key,
// checkpoint chaining, and bit-exact totals reconstruction. A single
// flipped byte anywhere in the dump makes verification fail.
//
// Usage:
//
//	acctee-verify -dump ledger.json [-measurement hex32] [-pubkey key.der]
//
// By default the dump-embedded public key and measurement are used (fine
// when the dump travelled a trusted channel). A suspicious verifier passes
// the key and measurement it attested itself: -pubkey takes the PKIX DER
// public key, -measurement the expected enclave measurement in hex.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acctee-verify:", err)
		os.Exit(1)
	}
}

func run() error {
	dumpPath := flag.String("dump", "", "serialised ledger (JSON, see /ledger endpoint or Ledger.Dump)")
	measHex := flag.String("measurement", "", "expected enclave measurement (64 hex chars; empty = trust the dump)")
	keyPath := flag.String("pubkey", "", "attested enclave public key (PKIX DER file; empty = trust the dump)")
	flag.Parse()
	if *dumpPath == "" {
		return fmt.Errorf("missing -dump")
	}

	var opts accounting.VerifyOptions
	if *measHex != "" {
		b, err := hex.DecodeString(*measHex)
		if err != nil || len(b) != len(sgx.Measurement{}) {
			return fmt.Errorf("-measurement wants %d hex bytes", len(sgx.Measurement{}))
		}
		copy(opts.Measurement[:], b)
	}
	if *keyPath != "" {
		der, err := os.ReadFile(*keyPath)
		if err != nil {
			return err
		}
		if opts.Key, err = accounting.ParsePublicKey(der); err != nil {
			return err
		}
	}

	f, err := os.Open(*dumpPath)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := accounting.VerifyReader(f, opts)
	if err != nil {
		return fmt.Errorf("LEDGER INVALID: %w", err)
	}
	fmt.Printf("ledger OK: %d records across %d shards, %d checkpoints (%d records checkpoint-covered, %d eager signatures)\n",
		res.Records, res.Shards, res.Checkpoints, res.CoveredRecords, res.EagerSignatures)
	fmt.Printf("totals: %d weighted instructions, peak memory %d B, memory integral %d, io %d/%d B, %d simulated cycles\n",
		res.Totals.WeightedInstructions, res.Totals.PeakMemoryBytes, res.Totals.MemoryIntegral,
		res.Totals.IOBytesIn, res.Totals.IOBytesOut, res.Totals.SimulatedCycles)
	return nil
}
