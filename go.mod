module acctee

go 1.24
