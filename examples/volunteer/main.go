// Volunteer computing example (paper §2.1): a project server hands a
// factorisation work unit to an untrusted volunteer. The volunteer's
// machine runs it inside the accountable two-way sandbox; the returned
// signed usage log lets the server credit exactly the work done — and a
// cheating volunteer who tampers with the result or inflates the log is
// caught by signature verification.
package main

import (
	"fmt"
	"log"

	"acctee"
	"acctee/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Project server: build and instrument the work-unit module once.
	raw, err := workloads.BuildMSieve()
	if err != nil {
		return err
	}
	module := acctee.WrapModule(raw)
	ie, err := acctee.NewInstrumenter(acctee.LoopBased, nil)
	if err != nil {
		return err
	}
	instrumented, evidence, err := ie.Instrument(module)
	if err != nil {
		return err
	}

	// Volunteer machine: platform with quoting enclave; the server attests
	// both enclaves remotely before trusting anything.
	platform, err := acctee.NewPlatform("volunteer-42")
	if err != nil {
		return err
	}
	if err := ie.Attest(platform); err != nil {
		return err
	}
	// Eager signing: the server credits each work unit on its own signed
	// ledger record.
	sandbox, err := acctee.NewSandbox(acctee.SandboxConfig{
		Mode:   acctee.Hardware,
		Ledger: acctee.LedgerOptions{EagerSign: true},
	}, instrumented, evidence, ie.PublicKey())
	if err != nil {
		return err
	}
	if err := sandbox.Attest(platform); err != nil {
		return err
	}

	// Work unit: factor 30 consecutive integers starting at 10^9+7.
	const lo, count = 1_000_000_007, 30
	res, err := sandbox.Run(acctee.RunOptions{Entry: "run", Args: []uint64{lo, count}})
	if err != nil {
		return err
	}
	if err := acctee.VerifyRecord(res.Record, sandbox.PublicKey()); err != nil {
		return fmt.Errorf("volunteer's record failed verification: %w", err)
	}

	// Server-side checks: the result matches the reference (no need to
	// re-run the unit on N other volunteers — the paper's point), and the
	// credited work is the signed weighted instruction count.
	want := workloads.NativeMSieve(lo, count)
	fmt.Printf("work unit result: %d (reference: %d, match: %v)\n", res.Results[0], want, res.Results[0] == want)
	fmt.Printf("credit granted: %d weighted instructions\n", res.Record.Log.WeightedInstructions)

	// A cheater inflating the counter for leader-board credit — even
	// re-hashing the forged record cannot fake the enclave signature:
	forged := res.Record
	forged.Log.WeightedInstructions *= 10
	forged.Hash = forged.ComputeHash()
	if err := acctee.VerifyRecord(forged, sandbox.PublicKey()); err != nil {
		fmt.Printf("forged record rejected: %v\n", err)
	} else {
		return fmt.Errorf("forged record was accepted — accounting broken")
	}
	return nil
}
