// Quickstart: the complete AccTEE workflow (paper Fig. 3) on a tiny
// workload — parse a module, instrument it in the instrumentation enclave,
// attest both enclaves, run it in the accountable two-way sandbox, and
// verify the signed resource usage log.
package main

import (
	"fmt"
	"log"

	"acctee"
)

const watSource = `
(module $fib
  (memory 1)
  (func $fib (param i32) (result i32)
    local.get 0
    i32.const 2
    i32.lt_s
    if (result i32)
      local.get 0
    else
      local.get 0
      i32.const 1
      i32.sub
      call $fib
      local.get 0
      i32.const 2
      i32.sub
      call $fib
      i32.add
    end
  )
  (export "fib" (func $fib))
  (export "memory" (memory 0))
)`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The workload provider supplies WebAssembly.
	module, err := acctee.ParseWAT(watSource)
	if err != nil {
		return err
	}

	// 2. The infrastructure provider's platform: quoting enclave +
	//    attestation service.
	platform, err := acctee.NewPlatform("quickstart-host")
	if err != nil {
		return err
	}

	// 3. The instrumentation enclave injects the weighted instruction
	//    counter (loop-based optimisation) and signs evidence.
	ie, err := acctee.NewInstrumenter(acctee.LoopBased, nil)
	if err != nil {
		return err
	}
	if err := ie.Attest(platform); err != nil {
		return fmt.Errorf("instrumentation enclave attestation: %w", err)
	}
	instrumented, evidence, err := ie.Instrument(module)
	if err != nil {
		return err
	}
	fmt.Printf("instrumented module: counter global #%d (%q)\n",
		evidence.CounterGlobal, evidence.CounterName)

	// 4. The accounting enclave verifies the evidence and hosts the
	//    two-way sandbox.
	sandbox, err := acctee.NewSandbox(acctee.SandboxConfig{Mode: acctee.Hardware},
		instrumented, evidence, ie.PublicKey())
	if err != nil {
		return err
	}
	if err := sandbox.Attest(platform); err != nil {
		return fmt.Errorf("accounting enclave attestation: %w", err)
	}

	// 5. Execute: each run chains a record onto the sandbox's tamper-
	//    evident ledger and hands back a receipt (shard, sequence, chain
	//    head). No per-run signature is paid on the hot path.
	for _, n := range []uint64{10, 20, 25} {
		res, err := sandbox.Run(acctee.RunOptions{Entry: "fib", Args: []uint64{n}})
		if err != nil {
			return err
		}
		fmt.Printf("fib(%2d) = %7d | weighted instructions: %9d | receipt %d/%d head %x…\n",
			n, res.Results[0], res.Record.Log.WeightedInstructions,
			res.Receipt.Shard, res.Receipt.Sequence, res.Receipt.ChainHead[:4])
	}

	// 6. One checkpoint signature covers every run at once ("periodically
	//    or upon request", §3.3) — verify it against the attested key.
	checkpoint, err := sandbox.Snapshot()
	if err != nil {
		return err
	}
	if err := acctee.VerifyCheckpoint(checkpoint, sandbox.PublicKey()); err != nil {
		return fmt.Errorf("checkpoint verification: %w", err)
	}
	fmt.Printf("checkpoint: %d runs, %d weighted instructions total — one signature, verified\n",
		checkpoint.Checkpoint.Covered(), checkpoint.Checkpoint.Totals.WeightedInstructions)

	// 7. The whole ledger replays offline (see also cmd/acctee-verify).
	dump, err := sandbox.Dump()
	if err != nil {
		return err
	}
	if _, err := acctee.VerifyLedger(dump, sandbox.PublicKey()); err != nil {
		return fmt.Errorf("offline ledger verification: %w", err)
	}
	fmt.Println("offline replay: chain continuity, gap-free sequences, totals — all verified")
	fmt.Println("note: the instruction counts are platform independent — any engine")
	fmt.Println("executing this module reports exactly the same numbers (paper §3.5).")
	return nil
}
