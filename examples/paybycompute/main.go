// Pay-by-computation example (paper §2.1): a news site replaces ads with
// short-lived background compute. The reader's browser runs a bounded
// image-classification task (Darknet-style CNN) inside the two-way
// sandbox; the site grants access once the signed log proves the agreed
// amount of computation — and the fuel limit stops the site from taking
// more than the reader agreed to.
package main

import (
	"errors"
	"fmt"
	"log"

	"acctee"
	"acctee/internal/interp"
	"acctee/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	raw, err := workloads.BuildDarknet(16, 4)
	if err != nil {
		return err
	}
	module := acctee.WrapModule(raw)

	platform, err := acctee.NewPlatform("reader-browser")
	if err != nil {
		return err
	}
	ie, err := acctee.NewInstrumenter(acctee.LoopBased, nil)
	if err != nil {
		return err
	}
	if err := ie.Attest(platform); err != nil {
		return err
	}
	instrumented, evidence, err := ie.Instrument(module)
	if err != nil {
		return err
	}
	// Eager signing: the site wants a verifiable record per task, not per
	// billing period, so each record carries its own enclave signature.
	sandbox, err := acctee.NewSandbox(acctee.SandboxConfig{
		Mode:   acctee.Hardware,
		Ledger: acctee.LedgerOptions{EagerSign: true},
	}, instrumented, evidence, ie.PublicKey())
	if err != nil {
		return err
	}
	if err := sandbox.Attest(platform); err != nil {
		return err
	}

	// The reader agreed to ~3 classification tasks' worth of compute.
	const priceForArticle = 3
	var paid uint64
	for task := 0; task < priceForArticle; task++ {
		res, err := sandbox.Run(acctee.RunOptions{Entry: "run"})
		if err != nil {
			return err
		}
		if err := acctee.VerifyRecord(res.Record, sandbox.PublicKey()); err != nil {
			return err
		}
		paid += res.Record.Log.WeightedInstructions
		fmt.Printf("classification task %d done | +%d weighted instructions (total %d)\n",
			task+1, res.Record.Log.WeightedInstructions, paid)
	}
	fmt.Printf("payment complete: %d weighted instructions — article unlocked\n", paid)

	// The sandbox also bounds what the site can take: a task that exceeds
	// the agreed fuel budget is cut off.
	_, err = sandbox.Run(acctee.RunOptions{Entry: "run", Fuel: 10_000})
	if errors.Is(err, interp.ErrFuelExhausted) {
		fmt.Println("over-budget task stopped by the sandbox (fuel exhausted) — the")
		fmt.Println("reader never donates more than agreed.")
		return nil
	}
	return fmt.Errorf("expected fuel exhaustion, got %v", err)
}
