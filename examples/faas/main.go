// Serverless example (paper §2.1, §5.3): deploy the image-resize function
// behind the FaaS gateway in the instrumented SGX setup, fire requests at
// it, read back per-request receipts into the gateway's hash-chained
// ledger, fetch a batch-signed checkpoint covering all of them, and verify
// the whole ledger offline. With -dump the serialised ledger is written for
// cmd/acctee-verify (the `make verify-ledger` smoke path).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"

	"acctee/internal/accounting"
	"acctee/internal/faas"
	"acctee/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dumpPath := flag.String("dump", "", "write the serialised ledger here for acctee-verify")
	flag.Parse()

	srv, err := faas.NewServer(faas.Resize, faas.SetupSGXHWInstr)
	if err != nil {
		return err
	}
	defer srv.Close()
	gateway := httptest.NewServer(srv)
	defer gateway.Close()
	fmt.Printf("resize function deployed at %s (setup: %s)\n", gateway.URL, faas.SetupSGXHWInstr)

	for _, size := range []int{64, 128, 256} {
		img := workloads.TestImage(size, size)
		req, err := http.NewRequest(http.MethodPost, gateway.URL, bytes.NewReader(img))
		if err != nil {
			return err
		}
		req.Header.Set("X-Width", strconv.Itoa(size))
		req.Header.Set("X-Height", strconv.Itoa(size))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		fmt.Printf("resize %4dx%-4d -> %d bytes | billed: %s weighted instructions | receipt %s/%s head %.8s…\n",
			size, size, len(body), resp.Header.Get("X-Weighted-Instructions"),
			resp.Header.Get("X-Acct-Shard"), resp.Header.Get("X-Acct-Sequence"),
			resp.Header.Get("X-Acct-Chain"))
	}
	fmt.Printf("gateway served %d requests\n", srv.Requests())

	// One checkpoint signature covers every request served so far.
	cr, err := http.Get(gateway.URL + faas.CheckpointPath)
	if err != nil {
		return err
	}
	var sc accounting.SignedCheckpoint
	if err := json.NewDecoder(cr.Body).Decode(&sc); err != nil {
		return err
	}
	_ = cr.Body.Close()
	if err := accounting.VerifyCheckpointSig(sc, srv.Enclave().PublicKey(), srv.Enclave().Measurement()); err != nil {
		return fmt.Errorf("checkpoint verification: %w", err)
	}
	fmt.Printf("checkpoint verified: %d records, %d weighted instructions — one signature\n",
		sc.Checkpoint.Covered(), sc.Checkpoint.Totals.WeightedInstructions)

	// Replay the whole ledger offline, exactly as acctee-verify does.
	dump, err := srv.Ledger().Dump()
	if err != nil {
		return err
	}
	vr, err := accounting.VerifyDump(dump, accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
	if err != nil {
		return fmt.Errorf("offline ledger verification: %w", err)
	}
	fmt.Printf("offline replay OK: %d records across %d shards, chain intact, totals reconstruct\n",
		vr.Records, vr.Shards)

	if *dumpPath != "" {
		j, err := dump.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dumpPath, j, 0o644); err != nil {
			return err
		}
		fmt.Printf("ledger written to %s (verify with: acctee-verify -dump %s)\n", *dumpPath, *dumpPath)
	}
	fmt.Println("identical inputs are billed identically on every provider — the")
	fmt.Println("per-instruction price is comparable across clouds (paper §3.2).")
	return nil
}
