// Serverless example (paper §2.1, §5.3): deploy the image-resize function
// behind the FaaS gateway in the instrumented SGX setup with bounded
// ledger retention, fire requests at it, read back per-request receipts
// into the gateway's hash-chained ledger, fetch a batch-signed checkpoint
// covering all of them, compact the ledger (sealed segments spill to
// disk), and verify both the full from-genesis dump and the truncated
// dump anchored at the compaction checkpoint — exactly what
// cmd/acctee-verify does offline (the `make verify-ledger` smoke path).
//
// With -prove-tamper the example additionally flips one byte inside a
// spilled binary frame and proves the spill verifier rejects it, then
// restores the byte so later `acctee-verify -spill` runs see the pristine
// directory.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"

	"acctee/internal/accounting"
	"acctee/internal/faas"
	"acctee/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dumpPath := flag.String("dump", "", "write the full serialised ledger here for acctee-verify")
	truncPath := flag.String("dump-truncated", "", "write the truncated (checkpoint-anchored) ledger here")
	binPath := flag.String("dump-binary", "", "write the binary (v3 container) ledger dump here")
	spillDir := flag.String("spill-dir", "", "spill sealed ledger segments to this directory")
	retention := flag.Int("retention", 8, "max resident ledger records before auto-compaction")
	keepEvery := flag.Int("keep-every", 2, "prune the persisted checkpoint chain to every Kth checkpoint plus the anchor tip (0 or 1 = keep all)")
	tamper := flag.Bool("prove-tamper", false, "flip a byte in a spilled binary frame and prove verification fails")
	flag.Parse()

	srv, err := faas.NewServerWithOptions(faas.Resize, faas.SetupSGXHWInstr, faas.ServerOptions{
		Ledger: accounting.LedgerOptions{
			Shards: 2,
			Retention: accounting.RetentionPolicy{
				MaxResidentRecords:  *retention,
				SegmentRecords:      4,
				SpillDir:            *spillDir,
				CheckpointKeepEvery: *keepEvery,
			},
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	gateway := httptest.NewServer(srv)
	defer gateway.Close()
	fmt.Printf("resize function deployed at %s (setup: %s, max resident records: %d)\n",
		gateway.URL, faas.SetupSGXHWInstr, *retention)

	for _, size := range []int{64, 128, 256} {
		img := workloads.TestImage(size, size)
		req, err := http.NewRequest(http.MethodPost, gateway.URL, bytes.NewReader(img))
		if err != nil {
			return err
		}
		req.Header.Set("X-Width", strconv.Itoa(size))
		req.Header.Set("X-Height", strconv.Itoa(size))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		fmt.Printf("resize %4dx%-4d -> %d bytes | billed: %s weighted instructions | receipt %s/%s head %.8s…\n",
			size, size, len(body), resp.Header.Get("X-Weighted-Instructions"),
			resp.Header.Get("X-Acct-Shard"), resp.Header.Get("X-Acct-Sequence"),
			resp.Header.Get("X-Acct-Chain"))
	}
	// A burst of small requests pushes the ledger past its retention
	// budget: segments fill, auto-compaction checkpoints and seals them.
	small := workloads.TestImage(32, 32)
	for i := 0; i < 21; i++ {
		req, err := http.NewRequest(http.MethodPost, gateway.URL, bytes.NewReader(small))
		if err != nil {
			return err
		}
		req.Header.Set("X-Width", "32")
		req.Header.Set("X-Height", "32")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	fmt.Printf("gateway served %d requests; resident ledger records: %d (spilled: %d)\n",
		srv.Requests(), srv.Ledger().Resident(), srv.Ledger().SpilledRecords())

	// One checkpoint signature covers every request served so far.
	cr, err := http.Get(gateway.URL + faas.CheckpointPath)
	if err != nil {
		return err
	}
	var sc accounting.SignedCheckpoint
	if err := json.NewDecoder(cr.Body).Decode(&sc); err != nil {
		return err
	}
	_ = cr.Body.Close()
	if err := accounting.VerifyCheckpointSig(sc, srv.Enclave().PublicKey(), srv.Enclave().Measurement()); err != nil {
		return fmt.Errorf("checkpoint verification: %w", err)
	}
	fmt.Printf("checkpoint verified: %d records, %d weighted instructions — one signature\n",
		sc.Checkpoint.Covered(), sc.Checkpoint.Totals.WeightedInstructions)

	// Compact on request (POST — it mutates ledger state): seal everything
	// the checkpoint covers, so the truncated dump below starts at a
	// non-zero sequence.
	compR, err := http.Post(gateway.URL+faas.CompactPath, "", nil)
	if err != nil {
		return err
	}
	var compact accounting.CompactResult
	if err := json.NewDecoder(compR.Body).Decode(&compact); err != nil {
		return err
	}
	_ = compR.Body.Close()
	fmt.Printf("compacted: anchor checkpoint %d, %d records released, %d resident\n",
		compact.Checkpoint.Checkpoint.Sequence, compact.Released, compact.Resident)

	// A few more requests after compaction: the truncated dump then holds
	// a live tail chaining from the anchor's carried-forward heads.
	for i := 0; i < 3; i++ {
		req, err := http.NewRequest(http.MethodPost, gateway.URL, bytes.NewReader(small))
		if err != nil {
			return err
		}
		req.Header.Set("X-Width", "32")
		req.Header.Set("X-Height", "32")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}

	// Fetch, save and verify both dump flavours, exactly as acctee-verify
	// does: the verifier streams, so the records are never materialised.
	fetchAndVerify := func(query, path, what string) (*accounting.VerifyResult, error) {
		resp, err := http.Get(gateway.URL + faas.LedgerPath + query)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if path != "" {
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				return nil, err
			}
		}
		vr, err := accounting.VerifyStream(bytes.NewReader(raw),
			accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
		if err != nil {
			return nil, fmt.Errorf("%s verification: %w", what, err)
		}
		return vr, nil
	}
	vr, err := fetchAndVerify("", *dumpPath, "full dump")
	if err != nil {
		return err
	}
	fmt.Printf("full replay OK: %d records across %d shards, chain intact, totals reconstruct\n",
		vr.Records, vr.Shards)
	tv, err := fetchAndVerify("?truncated=1", *truncPath, "truncated dump")
	if err != nil {
		return err
	}
	if !tv.Anchored || tv.StartRecords == 0 {
		return fmt.Errorf("truncated dump is not checkpoint-anchored (anchored=%v start=%d)", tv.Anchored, tv.StartRecords)
	}
	fmt.Printf("truncated replay OK: %d tail records, %d carried forward by anchor checkpoint %d's signature\n",
		tv.Records, tv.StartRecords, tv.AnchorSequence)
	// The binary v3 container carries the same proof in far fewer bytes;
	// the verifier autodetects it by the leading magic.
	resp, err := http.Get(gateway.URL + faas.LedgerPath + "?bin=1")
	if err != nil {
		return err
	}
	binRaw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	bv, err := accounting.VerifyStream(bytes.NewReader(binRaw),
		accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
	if err != nil {
		return fmt.Errorf("binary dump verification: %w", err)
	}
	if bv.Records != vr.Records {
		return fmt.Errorf("binary dump replayed %d records, JSON replayed %d", bv.Records, vr.Records)
	}
	if *binPath != "" {
		if err := os.WriteFile(*binPath, binRaw, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("binary dump replay OK: %d records in %d bytes (same proof, smaller container)\n",
		bv.Records, len(binRaw))

	if *tamper {
		if *spillDir == "" {
			return fmt.Errorf("-prove-tamper needs -spill-dir")
		}
		srv.Close() // flush and release the spill files first
		if _, err := accounting.VerifySpillDir(*spillDir, accounting.VerifyOptions{Key: srv.Enclave().PublicKey()}); err != nil {
			return fmt.Errorf("pristine spill dir failed verification: %w", err)
		}
		seg := filepath.Join(*spillDir, "shard-0000.seg")
		raw, err := os.ReadFile(seg)
		if err != nil {
			return err
		}
		// Byte 10 sits inside the first binary frame's payload — past the
		// length prefix, so the flip breaks the frame CRC and can never
		// pass for an honestly torn tail.
		pos := 10
		raw[pos] ^= 0x01
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			return err
		}
		_, verr := accounting.VerifySpillDir(*spillDir, accounting.VerifyOptions{Key: srv.Enclave().PublicKey()})
		if verr == nil {
			return fmt.Errorf("flipped byte %d in %s went UNDETECTED", pos, seg)
		}
		fmt.Printf("tamper detection OK: flipped byte %d in %s -> %v\n", pos, filepath.Base(seg), verr)
		raw[pos] ^= 0x01 // restore for later acctee-verify -spill runs
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			return err
		}
	}

	if *dumpPath != "" {
		fmt.Printf("ledger written to %s (verify with: acctee-verify -dump %s)\n", *dumpPath, *dumpPath)
	}
	if *truncPath != "" {
		fmt.Printf("truncated ledger written to %s (starts mid-chain, anchored at a signed checkpoint)\n", *truncPath)
	}
	fmt.Println("identical inputs are billed identically on every provider — the")
	fmt.Println("per-instruction price is comparable across clouds (paper §3.2).")
	return nil
}
