// Serverless example (paper §2.1, §5.3): deploy the image-resize function
// behind the FaaS gateway in the instrumented SGX setup, fire requests at
// it, and read back per-request resource accounting that both the customer
// and the provider trust.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"

	"acctee/internal/faas"
	"acctee/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := faas.NewServer(faas.Resize, faas.SetupSGXHWInstr)
	if err != nil {
		return err
	}
	gateway := httptest.NewServer(srv)
	defer gateway.Close()
	fmt.Printf("resize function deployed at %s (setup: %s)\n", gateway.URL, faas.SetupSGXHWInstr)

	for _, size := range []int{64, 128, 256} {
		img := workloads.TestImage(size, size)
		req, err := http.NewRequest(http.MethodPost, gateway.URL, bytes.NewReader(img))
		if err != nil {
			return err
		}
		req.Header.Set("X-Width", strconv.Itoa(size))
		req.Header.Set("X-Height", strconv.Itoa(size))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		fmt.Printf("resize %4dx%-4d -> %d bytes | billed: %s weighted instructions\n",
			size, size, len(body), resp.Header.Get("X-Weighted-Instructions"))
	}
	fmt.Printf("gateway served %d requests\n", srv.Requests())
	fmt.Println("identical inputs are billed identically on every provider — the")
	fmt.Println("per-instruction price is comparable across clouds (paper §3.2).")
	return nil
}
